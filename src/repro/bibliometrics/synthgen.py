"""Calibrated synthetic corpus generator.

The paper's bibliometric claims would normally be tested against scraped
venue corpora; none are available offline, so this module generates a
synthetic corpus whose *marginal statistics* are set by explicit,
documented parameters:

- per-venue human-method adoption rates (with a yearly trend),
- per-venue positionality-statement rates,
- venue-kind-specific topic mixes (networking venues skew toward
  datacenter/transport topics; HCI/STS venues toward community and
  accessibility topics),
- author pools with sector and region distributions,
- preferential-attachment citations biased toward same-topic papers.

Generated abstracts embed real method phrases from the
:mod:`repro.bibliometrics.methods_detect` lexicons, so the detection
pipeline runs on the generated text exactly as it would on scraped text
(it is *not* given the ground-truth labels).  Ground truth is kept in
the returned :class:`GroundTruth` so detector precision/recall can be
evaluated too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue

# -- topic templates ---------------------------------------------------------

TOPICS: dict[str, dict] = {
    "datacenter": {
        "nouns": ("datacenter fabrics", "rack-scale networks", "RDMA transport",
                  "congestion signals", "load balancing"),
        "verbs": ("optimizing", "scaling", "accelerating", "re-architecting"),
    },
    "transport": {
        "nouns": ("congestion control", "QUIC deployments", "loss recovery",
                  "bandwidth estimation", "latency budgets"),
        "verbs": ("tuning", "modeling", "rethinking", "measuring"),
    },
    "routing": {
        "nouns": ("BGP convergence", "interdomain routing", "route leaks",
                  "peering policies", "IXP route servers"),
        "verbs": ("securing", "auditing", "stabilizing", "mapping"),
    },
    "measurement": {
        "nouns": ("Internet topology", "DNS resolution paths", "CDN footprints",
                  "outage detection", "address usage"),
        "verbs": ("mapping", "longitudinally tracking", "inferring", "sampling"),
    },
    "wireless": {
        "nouns": ("spectrum sharing", "LTE schedulers", "mesh backhaul",
                  "rural connectivity links", "mmWave beams"),
        "verbs": ("characterizing", "deploying", "adapting", "stress-testing"),
    },
    "security": {
        "nouns": ("DDoS defenses", "RPKI adoption", "traffic hijacks",
                  "censorship circumvention", "key transparency"),
        "verbs": ("detecting", "mitigating", "hardening", "evading"),
    },
    "community-networks": {
        "nouns": ("community cellular networks", "neighborhood mesh networks",
                  "locally operated ISPs", "volunteer-run infrastructure",
                  "shared backhaul cooperatives"),
        "verbs": ("sustaining", "growing", "maintaining", "governing"),
    },
    "accessibility": {
        "nouns": ("assistive interfaces", "low-literacy onboarding",
                  "affordable access programs", "offline-first applications",
                  "inclusive captioning pipelines"),
        "verbs": ("designing", "evaluating", "co-creating", "localizing"),
    },
    "policy": {
        "nouns": ("spectrum regulation", "interconnection mandates",
                  "universal service funds", "data governance regimes",
                  "platform accountability rules"),
        "verbs": ("analyzing", "comparing", "contesting", "reforming"),
    },
    "iot": {
        "nouns": ("sensor swarms", "smart-home gateways", "LoRa deployments",
                  "edge inference pipelines", "battery-free tags"),
        "verbs": ("orchestrating", "securing", "powering", "profiling"),
    },
}

# Human-method sentence templates keyed by detector family; every
# template contains a phrase the corresponding lexicon matches.
_HUMAN_METHOD_SENTENCES: dict[str, tuple[str, ...]] = {
    "participatory": (
        "We conducted participatory action research with {partner} over {months} months.",
        "The system was shaped through co-design workshops with {partner}.",
        "Our community partners guided problem selection throughout the project.",
    ),
    "ethnography": (
        "We complement the measurements with ethnographic fieldwork at {partner}.",
        "Twelve weeks of participant observation grounded the design.",
        "Field notes from site visits informed each iteration.",
    ),
    "positionality": (
        "We reflect on our positionality as researchers embedded in this community.",
        "A reflexivity statement accompanies the methods section.",
    ),
    "interviews": (
        "We conducted semi-structured interviews with {n_participants} operators.",
        "Findings draw on in-depth interviews with network engineers at {partner}.",
        "We interviewed participants across {n_sites} deployment sites.",
    ),
    "surveys": (
        "A survey of {n_participants} practitioners complements the traces.",
        "We surveyed operators using a validated survey instrument.",
    ),
    "focus_groups": (
        "Three focus groups with residents refined the requirements.",
    ),
    "diaries": (
        "A four-week diary study captured everyday connectivity practices.",
        "Technology probes recorded household usage patterns.",
    ),
}

_QUANT_METHOD_SENTENCES: dict[str, tuple[str, ...]] = {
    "measurement": (
        "We measure the system from {n_sites} vantage points.",
        "Our measurement study spans {months} months of packet traces.",
        "Analysis of BGP tables from public collectors reveals the effect.",
    ),
    "simulation": (
        "We simulate the design in a discrete-event simulation at scale.",
        "A custom simulator replays production workloads.",
    ),
    "testbed": (
        "A testbed deployment validates the design under real traffic.",
        "We deploy the prototype in a production deployment for {months} months.",
    ),
}

_POSITIONALITY_STATEMENTS = (
    "Positionality\nThe authors situate themselves as {identity} with ties to "
    "{community}; this standpoint shaped which questions we prioritized.",
    "Positionality Statement\nWe write as {identity}. Our situated knowledge "
    "of {community} informs both the methods and the framing of results.",
)

_IDENTITIES = (
    "network engineers from the Global North",
    "researchers who grew up in the regions studied",
    "practitioners embedded in community networks",
    "academics with prior industry affiliations",
)

_COMMUNITIES = (
    "rural cooperative ISPs",
    "municipal broadband initiatives",
    "tribal telecommunications programs",
    "regional IXP operator associations",
)

_PARTNERS = (
    "a rural ISP cooperative",
    "a municipal network operator",
    "a regional IXP association",
    "a community anchor institution",
    "a national research network",
)

_SECTORS = ("university", "hyperscaler", "operator", "ngo", "government")
_REGIONS = (
    "north-america",
    "europe",
    "latin-america",
    "africa",
    "asia",
    "oceania",
)

_GIVEN = (
    "Alex", "Bianca", "Chidi", "Dana", "Emeka", "Fatima", "Gabriel", "Hana",
    "Ivan", "Julia", "Kofi", "Lin", "Maya", "Nikolai", "Oluwaseun", "Priya",
    "Quentin", "Rosa", "Sofia", "Tariq", "Uma", "Valeria", "Wei", "Ximena",
    "Yusuf", "Zanele",
)
_SURNAMES = (
    "Abara", "Bauer", "Castro", "Dlamini", "Eriksen", "Fernandez", "Gupta",
    "Hernandez", "Ito", "Jensen", "Kimura", "Lopez", "Mbeki", "Nguyen",
    "Okafor", "Park", "Quispe", "Rahman", "Silva", "Tanaka", "Umar",
    "Vasquez", "Wang", "Xu", "Yilmaz", "Zhao",
)


@dataclass(frozen=True, slots=True)
class VenueProfile:
    """Generation parameters for one venue.

    Attributes:
        venue_id: Stable id.
        name: Display name.
        kind: "networking", "hci", or "sts".
        papers_per_year: Papers generated per year.
        human_method_rate: Base probability a paper uses human methods.
        human_method_trend: Additive rate change per year (adoption drift).
        positionality_rate: Probability a *human-methods* paper carries a
            positionality statement (non-human-method papers never do).
        topic_weights: Topic -> relative weight for this venue.
        sector_weights: Author sector -> relative weight.
        region_weights: Author region -> relative weight.
    """

    venue_id: str
    name: str
    kind: str
    papers_per_year: int
    human_method_rate: float
    human_method_trend: float
    positionality_rate: float
    topic_weights: dict[str, float]
    sector_weights: dict[str, float]
    region_weights: dict[str, float]


def default_venue_profiles() -> list[VenueProfile]:
    """The 12-venue default panel used by experiments E1–E3.

    Rates are calibrated to the paper's qualitative claims: human methods
    a small minority (slowly growing) at networking venues, mainstream at
    HCI venues, universal at STS venues; positionality near-absent in
    networking; networking topic mixes dominated by
    datacenter/transport/routing (the "hyperscaler agenda" of Section 1).
    """
    networking_topics = {
        "datacenter": 3.0,
        "transport": 2.5,
        "routing": 2.5,
        "measurement": 2.5,
        "security": 2.0,
        "wireless": 1.5,
        "iot": 1.0,
        "community-networks": 0.3,
        "policy": 0.2,
        "accessibility": 0.1,
    }
    hci_topics = {
        "accessibility": 3.0,
        "community-networks": 2.0,
        "iot": 1.5,
        "policy": 1.5,
        "wireless": 1.0,
        "measurement": 0.5,
        "security": 0.5,
        "transport": 0.2,
        "datacenter": 0.1,
        "routing": 0.1,
    }
    sts_topics = {
        "policy": 3.0,
        "community-networks": 2.5,
        "accessibility": 1.5,
        "routing": 1.0,
        "measurement": 0.8,
        "security": 0.5,
        "wireless": 0.5,
        "datacenter": 0.2,
        "transport": 0.1,
        "iot": 0.2,
    }
    networking_sectors = {
        "university": 5.0,
        "hyperscaler": 3.0,
        "operator": 1.0,
        "government": 0.5,
        "ngo": 0.2,
    }
    hci_sectors = {
        "university": 7.0,
        "hyperscaler": 1.0,
        "ngo": 1.0,
        "operator": 0.3,
        "government": 0.5,
    }
    north_heavy = {
        "north-america": 5.0,
        "europe": 3.0,
        "asia": 1.5,
        "latin-america": 0.3,
        "africa": 0.2,
        "oceania": 0.3,
    }
    broader = {
        "north-america": 3.5,
        "europe": 2.5,
        "asia": 2.0,
        "latin-america": 1.0,
        "africa": 0.8,
        "oceania": 0.4,
    }

    def networking(venue_id: str, name: str, papers: int, rate: float) -> VenueProfile:
        return VenueProfile(
            venue_id=venue_id,
            name=name,
            kind="networking",
            papers_per_year=papers,
            human_method_rate=rate,
            human_method_trend=0.002,
            positionality_rate=0.02,
            topic_weights=networking_topics,
            sector_weights=networking_sectors,
            region_weights=north_heavy,
        )

    def hci(venue_id: str, name: str, papers: int, rate: float) -> VenueProfile:
        return VenueProfile(
            venue_id=venue_id,
            name=name,
            kind="hci",
            papers_per_year=papers,
            human_method_rate=rate,
            human_method_trend=0.004,
            positionality_rate=0.35,
            topic_weights=hci_topics,
            sector_weights=hci_sectors,
            region_weights=broader,
        )

    def sts(venue_id: str, name: str, papers: int) -> VenueProfile:
        return VenueProfile(
            venue_id=venue_id,
            name=name,
            kind="sts",
            papers_per_year=papers,
            human_method_rate=0.95,
            human_method_trend=0.0,
            positionality_rate=0.6,
            topic_weights=sts_topics,
            sector_weights=hci_sectors,
            region_weights=broader,
        )

    return [
        networking("sigcomm-like", "SIGCOMM-like", 45, 0.05),
        networking("nsdi-like", "NSDI-like", 40, 0.06),
        networking("imc-like", "IMC-like", 35, 0.09),
        networking("conext-like", "CoNEXT-like", 30, 0.07),
        networking("hotnets-like", "HotNets-like", 25, 0.10),
        networking("infocom-like", "INFOCOM-like", 60, 0.03),
        networking("sosr-like", "SOSR-like", 20, 0.04),
        hci("chi-like", "CHI-like", 70, 0.75),
        hci("cscw-like", "CSCW-like", 50, 0.85),
        hci("ictd-like", "ICTD-like", 30, 0.80),
        sts("sts-journal-like", "STS-journal-like", 20),
        sts("policy-review-like", "PolicyReview-like", 15),
    ]


@dataclass(frozen=True, slots=True)
class SyntheticCorpusConfig:
    """Generator parameters.

    Attributes:
        start_year: First publication year (inclusive).
        end_year: Last publication year (inclusive).
        seed: RNG seed; equal configs generate identical corpora.
        authors_per_venue_pool: Size of each venue's recurring author pool.
        annual_pool_growth: Fraction of the initial pool size added as
            brand-new authors each year (the community's newcomer
            influx; 0 freezes the room).
        mean_authors_per_paper: Average author-list length.
        mean_references: Average within-corpus citation count per paper.
        same_topic_citation_bias: Multiplier applied to same-topic papers
            during preferential-attachment citation sampling.
        venue_scale: Multiplier on every venue's ``papers_per_year``
            (rounded per venue).  Part of the config — and therefore of
            every corpus cache key — so two corpora of different sizes
            can never alias one artifact.  1.0 reproduces the historical
            output bit for bit.
    """

    start_year: int = 2000
    end_year: int = 2025
    seed: int = 0
    authors_per_venue_pool: int = 120
    annual_pool_growth: float = 0.04
    mean_authors_per_paper: float = 4.0
    mean_references: float = 8.0
    same_topic_citation_bias: float = 4.0
    venue_scale: float = 1.0


@dataclass
class GroundTruth:
    """Per-paper generation labels, for evaluating the detectors.

    Attributes:
        human_methods: paper_id -> tuple of human-method families planted.
        positionality: paper_ids that carry a positionality statement.
    """

    human_methods: dict[str, tuple[str, ...]] = field(default_factory=dict)
    positionality: set[str] = field(default_factory=set)


def _weighted_choice(rng: random.Random, weights: dict[str, float]) -> str:
    items = sorted(weights)
    return rng.choices(items, weights=[weights[i] for i in items], k=1)[0]


def _make_title(rng: random.Random, topic: str) -> str:
    spec = TOPICS[topic]
    verb = rng.choice(spec["verbs"])
    noun = rng.choice(spec["nouns"])
    suffix = rng.choice(
        ("at scale", "in the wild", "under constraints", "revisited",
         "for the next decade", "across regions")
    )
    return f"{verb.capitalize()} {noun} {suffix}"


def _fill(template: str, rng: random.Random) -> str:
    return template.format(
        partner=rng.choice(_PARTNERS),
        months=rng.randint(3, 24),
        n_participants=rng.randint(8, 60),
        n_sites=rng.randint(2, 12),
    )


def _make_abstract(
    rng: random.Random,
    topic: str,
    human_families: tuple[str, ...],
) -> str:
    spec = TOPICS[topic]
    noun = rng.choice(spec["nouns"])
    lead = (
        f"This paper studies {noun} and the practices surrounding it. "
        f"We present a system-level analysis and report lessons for the community."
    )
    sentences = [lead]
    quant_family = rng.choice(sorted(_QUANT_METHOD_SENTENCES))
    sentences.append(_fill(rng.choice(_QUANT_METHOD_SENTENCES[quant_family]), rng))
    for family in human_families:
        sentences.append(_fill(rng.choice(_HUMAN_METHOD_SENTENCES[family]), rng))
    sentences.append(
        "Results show consistent improvements and surface open questions "
        "for operators and researchers."
    )
    return " ".join(sentences)


def _sample_human_families(rng: random.Random, kind: str) -> tuple[str, ...]:
    """Which human-method families a human-methods paper uses."""
    primary_pool = {
        "networking": ("interviews", "surveys", "participatory", "ethnography"),
        "hci": ("interviews", "participatory", "diaries", "focus_groups",
                "surveys", "ethnography"),
        "sts": ("ethnography", "interviews", "participatory"),
    }[kind]
    n_families = 1 + (rng.random() < 0.45) + (rng.random() < 0.15)
    families = rng.sample(primary_pool, k=min(n_families, len(primary_pool)))
    return tuple(sorted(families))


def generate_corpus(
    config: SyntheticCorpusConfig | None = None,
    profiles: list[VenueProfile] | None = None,
) -> tuple[Corpus, GroundTruth]:
    """Generate a synthetic corpus and its ground-truth labels.

    Deterministic for a given ``(config, profiles)`` pair.

    Returns:
        ``(corpus, ground_truth)``.
    """
    config = config or SyntheticCorpusConfig()
    profiles = profiles if profiles is not None else default_venue_profiles()
    if config.end_year < config.start_year:
        raise ValueError("end_year must be >= start_year")
    rng = random.Random(config.seed)
    corpus = Corpus()
    truth = GroundTruth()

    # Author pools per venue (researchers publish repeatedly at "their"
    # venue); pools grow by a newcomer influx each year.
    pools: dict[str, list[str]] = {}
    pool_counters: dict[str, int] = {}

    def grow_pool(profile: VenueProfile, n_new: int) -> None:
        pool = pools[profile.venue_id]
        for _ in range(n_new):
            index = pool_counters[profile.venue_id]
            pool_counters[profile.venue_id] += 1
            author_id = f"{profile.venue_id}-a{index:04d}"
            sector = _weighted_choice(rng, profile.sector_weights)
            region = _weighted_choice(rng, profile.region_weights)
            name = f"{rng.choice(_GIVEN)} {rng.choice(_SURNAMES)}"
            affiliation = f"{region}:{sector}-{rng.randint(1, 30):02d}"
            corpus.add_author(
                Author(author_id, name, affiliation, sector, region)
            )
            pool.append(author_id)

    for profile in profiles:
        corpus.add_venue(Venue(profile.venue_id, profile.name, profile.kind))
        pools[profile.venue_id] = []
        pool_counters[profile.venue_id] = 0
        grow_pool(profile, config.authors_per_venue_pool)

    # Papers, year by year, with preferential-attachment citations.
    published: list[Paper] = []
    citation_score: dict[str, float] = {}
    paper_counter = 0
    influx = max(
        0, round(config.annual_pool_growth * config.authors_per_venue_pool)
    )
    for year in range(config.start_year, config.end_year + 1):
        for profile in profiles:
            years_in = year - config.start_year
            if years_in > 0 and influx:
                grow_pool(profile, influx)
            rate = min(
                1.0,
                max(0.0, profile.human_method_rate
                    + profile.human_method_trend * years_in),
            )
            for _ in range(max(0, round(profile.papers_per_year * config.venue_scale))):
                paper_id = f"p{paper_counter:06d}"
                paper_counter += 1
                topic = _weighted_choice(rng, profile.topic_weights)
                uses_human = rng.random() < rate
                families = _sample_human_families(rng, profile.kind) if uses_human else ()
                title = _make_title(rng, topic)
                abstract = _make_abstract(rng, topic, families)
                body = ""
                has_positionality = (
                    uses_human and rng.random() < profile.positionality_rate
                )
                if has_positionality:
                    statement = rng.choice(_POSITIONALITY_STATEMENTS).format(
                        identity=rng.choice(_IDENTITIES),
                        community=rng.choice(_COMMUNITIES),
                    )
                    body = statement

                n_authors = max(1, round(rng.gauss(config.mean_authors_per_paper, 1.5)))
                pool = pools[profile.venue_id]
                author_ids = tuple(rng.sample(pool, k=min(n_authors, len(pool))))

                references: tuple[str, ...] = ()
                if published:
                    n_refs = min(
                        len(published),
                        max(0, round(rng.gauss(config.mean_references, 3.0))),
                    )
                    if n_refs > 0:
                        weights = [
                            (1.0 + citation_score.get(p.paper_id, 0.0))
                            * (config.same_topic_citation_bias
                               if p.topic == topic else 1.0)
                            for p in published
                        ]
                        chosen: set[str] = set()
                        for _ in range(n_refs):
                            pick = rng.choices(published, weights=weights, k=1)[0]
                            chosen.add(pick.paper_id)
                        references = tuple(sorted(chosen))
                        for ref in references:
                            citation_score[ref] = citation_score.get(ref, 0.0) + 1.0

                paper = Paper(
                    paper_id=paper_id,
                    title=title,
                    abstract=abstract,
                    body=body,
                    venue_id=profile.venue_id,
                    year=year,
                    author_ids=author_ids,
                    topic=topic,
                    references=references,
                )
                corpus.add_paper(paper)
                published.append(paper)
                if families:
                    truth.human_methods[paper_id] = families
                if has_positionality:
                    truth.positionality.add(paper_id)

    return corpus, truth
