"""Columnar (struct-of-arrays) corpus representation.

The dataclass :class:`~repro.bibliometrics.corpus.Corpus` holds one
Python object per paper — fine at 10³–10⁴ papers, the scale ceiling at
10⁶–10⁷.  This module stores a corpus as contiguous numpy columns
grouped into fixed-size **shards**:

- integer columns per paper (``year``, ``venue_idx``, ``topic_idx``),
- author lists and within-corpus citations as CSR pairs
  (``indptr``/``values``) of *global* author / paper indices,
- text (titles, abstracts, bodies) as :class:`TextColumn` pools — one
  concatenated blob plus an offsets array, so a shard's strings cost
  two objects instead of ``3 × n_papers``,
- generator ground truth as a per-paper human-family bitmask plus a
  positionality flag column.

:class:`ColumnarCorpus` exposes the existing ``Corpus``/``Paper`` API
*lazily* — iteration yields real :class:`Paper` dataclasses built on
demand — so every current consumer (``methods_detect``, ``trends``,
``demographics``…) keeps working unchanged, while scale-aware callers
use :meth:`ColumnarCorpus.iter_shards` and the per-shard reducers in
:mod:`repro.bibliometrics.shardscan`.  With ``max_resident=1`` the
corpus streams: at most one shard's string pools are decoded at a time
and the rest live in the :class:`repro.io.artifacts.ArtifactCache`.

Shards serialize to the artifact cache's JSONL record format (one
record per column, numeric data base64-encoded, text stored as JSON
strings — no pickle), and fingerprint over their raw column buffers;
:func:`merge_fingerprints` combines per-shard digests associatively in
shard order, which is what makes the corpus fingerprint independent of
worker count and cache state.
"""

from __future__ import annotations

import base64
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.bibliometrics.corpus import Author, Corpus, Paper, Venue
from repro.errors import IntegrityError

__all__ = [
    "HUMAN_FAMILY_ORDER",
    "SHARD_ARTIFACT_KIND",
    "SHARD_SCHEMA_VERSION",
    "ColumnarCorpus",
    "ColumnarShard",
    "CorpusVocab",
    "TextColumn",
    "decode_shard",
    "encode_shard",
    "merge_fingerprints",
    "paper_id_for",
]

#: Artifact-cache kind for streamed corpus shards.
SHARD_ARTIFACT_KIND = "corpus-shard"

#: Bump when the column set or encoding changes shape; old cache
#: entries become unreachable and shards are regenerated on demand.
#: v2 rides the artifact format's end-to-end digest bump (PR 9), so
#: every cached shard is re-landed with a verifiable body checksum.
SHARD_SCHEMA_VERSION = 2

#: Bit order of the ground-truth human-family mask (bit i set = the
#: generator planted a sentence of family ``HUMAN_FAMILY_ORDER[i]``).
HUMAN_FAMILY_ORDER: tuple[str, ...] = (
    "diaries",
    "ethnography",
    "focus_groups",
    "interviews",
    "participatory",
    "positionality",
    "surveys",
)

#: Width of the zero-padded global index inside generated paper ids.
_PAPER_ID_DIGITS = 8


def paper_id_for(index: int) -> str:
    """The stable paper id for global paper ``index`` (``p00000042``)."""
    return f"p{index:0{_PAPER_ID_DIGITS}d}"


def _index_of_paper_id(paper_id: str) -> int:
    if not paper_id.startswith("p"):
        raise KeyError(paper_id)
    try:
        return int(paper_id[1:], 10)
    except ValueError:
        raise KeyError(paper_id) from None


class TextColumn:
    """``n`` strings stored as one blob plus an int64 offsets array.

    ``offsets`` has ``n + 1`` entries; string ``i`` is
    ``blob[offsets[i]:offsets[i + 1]]``.  Slicing is lazy — holding a
    TextColumn costs two objects however many strings it contains.
    """

    __slots__ = ("blob", "offsets")

    def __init__(self, blob: str, offsets: np.ndarray) -> None:
        self.blob = blob
        self.offsets = np.asarray(offsets, dtype=np.int64)

    @classmethod
    def from_strings(cls, strings: Iterable[str]) -> "TextColumn":
        parts = list(strings)
        offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum([len(p) for p in parts], out=offsets[1:])
        return cls("".join(parts), offsets)

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, index: int) -> str:
        return self.blob[self.offsets[index]:self.offsets[index + 1]]

    def __iter__(self) -> Iterator[str]:
        blob, offsets = self.blob, self.offsets
        for i in range(len(self)):
            yield blob[offsets[i]:offsets[i + 1]]

    @property
    def nbytes(self) -> int:
        """Approximate resident size (UTF-8 blob + offsets)."""
        return len(self.blob.encode("utf-8", "replace")) + self.offsets.nbytes


#: (attribute name, dtype) of every numeric shard column, in
#: serialization (and fingerprint) order.
_INT_COLUMNS: tuple[tuple[str, str], ...] = (
    ("year", "int32"),
    ("venue_idx", "int16"),
    ("topic_idx", "int16"),
    ("author_indptr", "int64"),
    ("author_values", "int64"),
    ("ref_indptr", "int64"),
    ("ref_values", "int64"),
    ("human_mask", "uint16"),
    ("positionality", "uint8"),
)

_TEXT_COLUMNS: tuple[str, ...] = ("title", "abstract", "body")


@dataclass
class ColumnarShard:
    """One contiguous slice of the corpus in struct-of-arrays form.

    Papers ``paper_offset .. paper_offset + n_papers - 1`` (global
    indices).  ``author_values`` holds global author indices into the
    :class:`CorpusVocab` author table; ``ref_values`` holds global
    *paper* indices (always earlier years, so always resolvable).
    """

    index: int
    paper_offset: int
    year: np.ndarray
    venue_idx: np.ndarray
    topic_idx: np.ndarray
    author_indptr: np.ndarray
    author_values: np.ndarray
    ref_indptr: np.ndarray
    ref_values: np.ndarray
    human_mask: np.ndarray
    positionality: np.ndarray
    title: TextColumn
    abstract: TextColumn
    body: TextColumn

    @property
    def n_papers(self) -> int:
        return int(self.year.shape[0])

    def authors_of(self, local: int) -> np.ndarray:
        """Global author indices of local paper ``local``."""
        return self.author_values[self.author_indptr[local]:self.author_indptr[local + 1]]

    def refs_of(self, local: int) -> np.ndarray:
        """Global paper indices cited by local paper ``local``."""
        return self.ref_values[self.ref_indptr[local]:self.ref_indptr[local + 1]]

    def full_text(self, local: int) -> str:
        """Title + abstract + body of local paper ``local``."""
        return "\n\n".join(
            part
            for part in (self.title[local], self.abstract[local], self.body[local])
            if part
        )

    def human_families(self, local: int) -> tuple[str, ...]:
        """Ground-truth human families planted in local paper ``local``."""
        mask = int(self.human_mask[local])
        return tuple(
            family
            for bit, family in enumerate(HUMAN_FAMILY_ORDER)
            if mask & (1 << bit)
        )

    def fingerprint(self) -> str:
        """SHA-256 over the raw column buffers (order-fixed).

        Computed on the in-memory arrays, so a generated shard and its
        decoded cache copy fingerprint identically (roundtrip fidelity
        is test-enforced) — the corpus fingerprint is therefore the
        same whether shards came cold from the generator or warm from
        the artifact cache.
        """
        digest = hashlib.sha256()
        digest.update(f"shard:{self.index}:{self.paper_offset}:{self.n_papers}".encode())
        for name, dtype in _INT_COLUMNS:
            array = np.ascontiguousarray(getattr(self, name), dtype=dtype)
            digest.update(name.encode())
            digest.update(array.tobytes())
        for name in _TEXT_COLUMNS:
            column: TextColumn = getattr(self, name)
            digest.update(name.encode())
            digest.update(column.blob.encode("utf-8"))
            digest.update(np.ascontiguousarray(column.offsets).tobytes())
        return digest.hexdigest()

    @property
    def nbytes(self) -> int:
        """Approximate resident size of every column."""
        total = 0
        for name, _ in _INT_COLUMNS:
            total += getattr(self, name).nbytes
        for name in _TEXT_COLUMNS:
            total += getattr(self, name).nbytes
        return total


def _b64(array: np.ndarray, dtype: str) -> str:
    return base64.b64encode(
        np.ascontiguousarray(array, dtype=dtype).tobytes()
    ).decode("ascii")


def _unb64(data: str, dtype: str) -> np.ndarray:
    return np.frombuffer(base64.b64decode(data.encode("ascii")), dtype=dtype).copy()


def encode_shard(shard: ColumnarShard) -> list[dict]:
    """Serialize a shard to artifact-cache records (JSON-safe, no pickle).

    One record per column: numeric columns travel as base64 of their
    little-endian buffer, text columns as the blob string plus base64
    offsets.  The leading record carries the shard header.
    """
    records: list[dict] = [{
        "shard": shard.index,
        "paper_offset": shard.paper_offset,
        "n_papers": shard.n_papers,
    }]
    for name, dtype in _INT_COLUMNS:
        records.append({
            "column": name,
            "dtype": dtype,
            "data": _b64(getattr(shard, name), dtype),
        })
    for name in _TEXT_COLUMNS:
        column: TextColumn = getattr(shard, name)
        records.append({
            "column": name,
            "blob": column.blob,
            "offsets": _b64(column.offsets, "int64"),
        })
    return records


def decode_shard(records: list[dict]) -> ColumnarShard:
    """Inverse of :func:`encode_shard`.

    Structural damage — a missing header or column record — raises a
    typed :class:`repro.errors.IntegrityError` (still a ``ValueError``,
    so pre-taxonomy callers keep working).
    """
    if not records or "shard" not in records[0]:
        raise IntegrityError(
            "not a shard record stream: missing header",
            kind=SHARD_ARTIFACT_KIND,
            damage="bad_header",
            stage="read",
        )
    header = records[0]
    columns: dict[str, object] = {}
    for record in records[1:]:
        name = record["column"]
        if "blob" in record:
            columns[name] = TextColumn(record["blob"], _unb64(record["offsets"], "int64"))
        else:
            columns[name] = _unb64(record["data"], record["dtype"])
    missing = (
        {name for name, _ in _INT_COLUMNS} | set(_TEXT_COLUMNS)
    ) - set(columns)
    if missing:
        raise IntegrityError(
            f"shard record stream missing columns: {sorted(missing)}",
            kind=SHARD_ARTIFACT_KIND,
            damage="truncated",
            stage="read",
        )
    return ColumnarShard(
        index=int(header["shard"]),
        paper_offset=int(header["paper_offset"]),
        **columns,  # type: ignore[arg-type]
    )


def merge_fingerprints(shard_fingerprints: Iterable[str]) -> str:
    """Combine per-shard digests into the corpus fingerprint.

    The combination is a digest over the ordered digest list — shards
    are merged in shard-index order whatever order workers finished in,
    so the result depends only on shard *content*, never on scheduling,
    worker count, or cache temperature.
    """
    digest = hashlib.sha256()
    for fingerprint in shard_fingerprints:
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class CorpusVocab:
    """Shared side tables every shard's integer columns point into.

    Venues and topics are tiny; the author table is itself columnar
    (sector/region/name/affiliation as small integer columns, ids and
    :class:`Author` objects materialized lazily).
    """

    venues: tuple[Venue, ...]
    topics: tuple[str, ...]
    #: First global author index of each venue's pool (len = venues+1).
    author_offsets: np.ndarray
    author_sector_idx: np.ndarray
    author_region_idx: np.ndarray
    author_given_idx: np.ndarray
    author_surname_idx: np.ndarray
    author_affil_num: np.ndarray
    sectors: tuple[str, ...] = ()
    regions: tuple[str, ...] = ()
    given_names: tuple[str, ...] = ()
    surnames: tuple[str, ...] = ()
    _author_ids: dict[int, str] = field(default_factory=dict, repr=False)

    @property
    def n_authors(self) -> int:
        return int(self.author_offsets[-1])

    def venue_of_author(self, index: int) -> int:
        """Venue (index) owning global author ``index``'s pool."""
        return int(np.searchsorted(self.author_offsets, index, side="right") - 1)

    def author_id(self, index: int) -> str:
        """Stable author id for global author index ``index``."""
        cached = self._author_ids.get(index)
        if cached is None:
            venue = self.venue_of_author(index)
            local = index - int(self.author_offsets[venue])
            cached = f"{self.venues[venue].venue_id}-a{local:06d}"
            self._author_ids[index] = cached
        return cached

    def author_index(self, author_id: str) -> int:
        """Inverse of :meth:`author_id` (KeyError when malformed/unknown)."""
        venue_id, _, local = author_id.rpartition("-a")
        for venue_idx, venue in enumerate(self.venues):
            if venue.venue_id == venue_id:
                try:
                    index = int(self.author_offsets[venue_idx]) + int(local, 10)
                except ValueError:
                    raise KeyError(author_id) from None
                if index >= int(self.author_offsets[venue_idx + 1]):
                    raise KeyError(author_id)
                return index
        raise KeyError(author_id)

    def author(self, index: int) -> Author:
        """The :class:`Author` dataclass for global author ``index``."""
        sector = self.sectors[self.author_sector_idx[index]]
        region = self.regions[self.author_region_idx[index]]
        return Author(
            author_id=self.author_id(index),
            name=(
                f"{self.given_names[self.author_given_idx[index]]} "
                f"{self.surnames[self.author_surname_idx[index]]}"
            ),
            affiliation=f"{region}:{sector}-{int(self.author_affil_num[index]):02d}",
            sector=sector,
            region=region,
        )


class ColumnarCorpus:
    """A sharded columnar corpus behind the classic ``Corpus`` API.

    Shards load through ``loader(shard_index)`` and are kept in a small
    LRU; with ``max_resident=1`` (streaming mode) at most one shard's
    string pools are decoded at any moment, so iterating a 10⁶-paper
    corpus costs one shard of RAM, not the corpus.

    The dataclass API (:meth:`__iter__`, :meth:`papers`,
    :meth:`paper` …) materializes :class:`Paper` objects on demand and
    is the *compatibility* path; scale-aware consumers should reduce
    per shard via :meth:`iter_shards` (see
    :mod:`repro.bibliometrics.shardscan`).
    """

    def __init__(
        self,
        vocab: CorpusVocab,
        shard_sizes: list[int],
        loader: Callable[[int], ColumnarShard],
        *,
        shard_fingerprints: list[str] | None = None,
        max_resident: int | None = None,
    ) -> None:
        self.vocab = vocab
        self._sizes = list(shard_sizes)
        self._offsets = [0]
        for size in self._sizes:
            self._offsets.append(self._offsets[-1] + size)
        self._loader = loader
        self._shard_fingerprints = shard_fingerprints
        self.max_resident = max_resident
        self._resident: dict[int, ColumnarShard] = {}
        self._resident_order: list[int] = []

    # -- shard access --------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._sizes)

    def resident_shards(self) -> int:
        """How many shards are currently decoded in memory."""
        return len(self._resident)

    def shard_sizes(self) -> list[int]:
        """Paper count of every shard, in shard order (no loads)."""
        return list(self._sizes)

    def shard(self, index: int) -> ColumnarShard:
        """Shard ``index``, loading (and evicting) as needed."""
        if not 0 <= index < self.n_shards:
            raise IndexError(f"shard {index} out of range 0..{self.n_shards - 1}")
        shard = self._resident.get(index)
        if shard is not None:
            self._resident_order.remove(index)
            self._resident_order.append(index)
            return shard
        # Evict *before* loading, so streaming mode never holds two
        # shards' string pools at once even transiently.
        if self.max_resident is not None:
            while len(self._resident) >= max(1, self.max_resident):
                oldest = self._resident_order.pop(0)
                del self._resident[oldest]
        shard = self._loader(index)
        if shard.n_papers != self._sizes[index]:
            raise IntegrityError(
                f"shard {index} loaded with {shard.n_papers} papers; "
                f"expected {self._sizes[index]}",
                kind=SHARD_ARTIFACT_KIND,
                damage="truncated",
                stage="read",
            )
        if self._shard_fingerprints is not None:
            # End-to-end check: the loaded buffers must hash to the
            # fingerprint recorded at generation/export time, so a
            # damaged loader source cannot slip wrong columns into an
            # otherwise healthy corpus.
            expected = self._shard_fingerprints[index]
            actual = shard.fingerprint()
            if actual != expected:
                raise IntegrityError(
                    f"shard {index} fingerprint mismatch on load",
                    kind=SHARD_ARTIFACT_KIND,
                    damage="bit_flipped",
                    expected=expected,
                    actual=actual,
                    stage="read",
                )
        self._resident[index] = shard
        self._resident_order.append(index)
        return shard

    def iter_shards(self) -> Iterator[ColumnarShard]:
        """Stream shards in order (each load may evict the previous)."""
        for index in range(self.n_shards):
            yield self.shard(index)

    def fingerprint(self) -> str:
        """The associative merge of the per-shard fingerprints.

        Uses the fingerprints recorded at generation/load time when
        available; otherwise streams every shard once to compute them.
        """
        if self._shard_fingerprints is None:
            self._shard_fingerprints = [
                shard.fingerprint() for shard in self.iter_shards()
            ]
        return merge_fingerprints(self._shard_fingerprints)

    # -- locating papers -----------------------------------------------

    def _locate(self, index: int) -> tuple[int, int]:
        if not 0 <= index < len(self):
            raise KeyError(paper_id_for(index))
        shard_index = int(
            np.searchsorted(np.asarray(self._offsets), index, side="right") - 1
        )
        return shard_index, index - self._offsets[shard_index]

    def _paper_at(self, shard: ColumnarShard, local: int) -> Paper:
        vocab = self.vocab
        return Paper(
            paper_id=paper_id_for(shard.paper_offset + local),
            title=shard.title[local],
            abstract=shard.abstract[local],
            body=shard.body[local],
            venue_id=vocab.venues[shard.venue_idx[local]].venue_id,
            year=int(shard.year[local]),
            author_ids=tuple(
                vocab.author_id(int(a)) for a in shard.authors_of(local)
            ),
            topic=vocab.topics[shard.topic_idx[local]],
            references=tuple(
                paper_id_for(int(r)) for r in shard.refs_of(local)
            ),
        )

    # -- Corpus API ----------------------------------------------------

    def __len__(self) -> int:
        return self._offsets[-1]

    def __iter__(self) -> Iterator[Paper]:
        for shard in self.iter_shards():
            for local in range(shard.n_papers):
                yield self._paper_at(shard, local)

    def paper(self, paper_id: str) -> Paper:
        """Paper by id (KeyError when absent)."""
        shard_index, local = self._locate(_index_of_paper_id(paper_id))
        return self._paper_at(self.shard(shard_index), local)

    def author(self, author_id: str) -> Author:
        """Author by id (KeyError when absent)."""
        return self.vocab.author(self.vocab.author_index(author_id))

    def venue(self, venue_id: str) -> Venue:
        """Venue by id (KeyError when absent)."""
        for venue in self.vocab.venues:
            if venue.venue_id == venue_id:
                return venue
        raise KeyError(venue_id)

    def papers(
        self,
        venue_id: str | None = None,
        year: int | None = None,
        topic: str | None = None,
        predicate: Callable[[Paper], bool] | None = None,
    ) -> list[Paper]:
        """Papers filtered by venue, year, topic, and/or a predicate.

        Materializes matching papers only: the filter runs on the
        integer columns first, so an off-venue/off-year shard costs a
        few array compares and zero string slicing.
        """
        venue_idx = None
        if venue_id is not None:
            venue_idx = next(
                (i for i, v in enumerate(self.vocab.venues) if v.venue_id == venue_id),
                -1,
            )
        topic_idx = None
        if topic is not None:
            topic_idx = (
                self.vocab.topics.index(topic) if topic in self.vocab.topics else -1
            )
        result: list[Paper] = []
        for shard in self.iter_shards():
            mask = np.ones(shard.n_papers, dtype=bool)
            if venue_idx is not None:
                mask &= shard.venue_idx == venue_idx
            if year is not None:
                mask &= shard.year == year
            if topic_idx is not None:
                mask &= shard.topic_idx == topic_idx
            for local in np.nonzero(mask)[0]:
                paper = self._paper_at(shard, int(local))
                if predicate is None or predicate(paper):
                    result.append(paper)
        return result

    def venues(self) -> list[Venue]:
        """All venues, sorted by id."""
        return sorted(self.vocab.venues, key=lambda v: v.venue_id)

    def authors(self) -> list[Author]:
        """All authors, sorted by id (materialized — small table)."""
        return sorted(
            (self.vocab.author(i) for i in range(self.vocab.n_authors)),
            key=lambda a: a.author_id,
        )

    def years(self) -> list[int]:
        """Distinct publication years, ascending (columnar scan)."""
        seen: set[int] = set()
        for shard in self.iter_shards():
            seen.update(int(y) for y in np.unique(shard.year))
        return sorted(seen)

    # -- aggregates (columnar fast paths) ------------------------------

    def papers_per_author_array(self) -> np.ndarray:
        """Paper counts indexed by global author index (zeros included)."""
        counts = np.zeros(self.vocab.n_authors, dtype=np.int64)
        for shard in self.iter_shards():
            if shard.author_values.size:
                counts += np.bincount(
                    shard.author_values, minlength=self.vocab.n_authors
                )
        return counts

    def papers_per_author(self):
        """Counter of paper counts keyed by author id (Corpus API)."""
        from collections import Counter

        counts = self.papers_per_author_array()
        return Counter({
            self.vocab.author_id(int(i)): int(counts[i])
            for i in np.nonzero(counts)[0]
        })

    def citation_counts_array(self) -> np.ndarray:
        """Within-corpus citation counts indexed by global paper index."""
        counts = np.zeros(len(self), dtype=np.int64)
        for shard in self.iter_shards():
            if shard.ref_values.size:
                counts += np.bincount(shard.ref_values, minlength=len(self))
        return counts

    def citation_counts(self):
        """Counter of citations keyed by cited paper id (Corpus API)."""
        from collections import Counter

        counts = self.citation_counts_array()
        return Counter({
            paper_id_for(int(i)): int(counts[i]) for i in np.nonzero(counts)[0]
        })

    def topic_counts(self, venue_id: str | None = None):
        """Counter of paper counts keyed by topic (Corpus API)."""
        from collections import Counter

        venue_idx = None
        if venue_id is not None:
            venue_idx = next(
                (i for i, v in enumerate(self.vocab.venues) if v.venue_id == venue_id),
                -1,
            )
        totals = np.zeros(len(self.vocab.topics), dtype=np.int64)
        for shard in self.iter_shards():
            topic_idx = shard.topic_idx
            if venue_idx is not None:
                topic_idx = topic_idx[shard.venue_idx == venue_idx]
            if topic_idx.size:
                totals += np.bincount(topic_idx, minlength=len(self.vocab.topics))
        return Counter({
            self.vocab.topics[i]: int(totals[i]) for i in np.nonzero(totals)[0]
        })

    # -- interop -------------------------------------------------------

    def truth(self):
        """Materialize the generator's :class:`GroundTruth` labels.

        Builds per-paper dicts — intended for oracle tests and small
        corpora, not the 10⁶-paper streaming path.
        """
        from repro.bibliometrics.synthgen import GroundTruth

        truth = GroundTruth()
        for shard in self.iter_shards():
            planted = np.nonzero(shard.human_mask)[0]
            for local in planted:
                truth.human_methods[
                    paper_id_for(shard.paper_offset + int(local))
                ] = shard.human_families(int(local))
            for local in np.nonzero(shard.positionality)[0]:
                truth.positionality.add(
                    paper_id_for(shard.paper_offset + int(local))
                )
        return truth

    def to_corpus(self) -> Corpus:
        """Materialize a classic dataclass :class:`Corpus`.

        The equivalence-oracle bridge: tests run the legacy analytics
        on the materialized corpus and assert the per-shard reducers
        agree.  Memory scales with corpus size — use at oracle scale.
        """
        corpus = Corpus()
        for venue in self.vocab.venues:
            corpus.add_venue(venue)
        for author in self.authors():
            corpus.add_author(author)
        for paper in self:
            corpus.add_paper(paper)
        return corpus
