"""Error taxonomy for the toolkit.

Every failure the library can surface descends from :class:`ReproError`,
so callers that orchestrate many experiments (``repro.runtime``) or many
files (``repro.io``) can catch one base class and still tell failure
modes apart.  Each error carries *where it happened* — experiment id,
seed, and pipeline stage — because in a 13-experiment suite a bare
traceback is not enough to reproduce a crash.

Hierarchy::

    ReproError
    ├── ExperimentError          an experiment run failed
    │   ├── UnknownExperimentError   (also a KeyError, for back-compat)
    │   └── WorkerCrashError         a pool worker died (signal/OOM/segfault)
    ├── CheckFailure             shape-checks evaluated false
    ├── SpecError                an experiment spec is invalid (also ValueError)
    ├── DataFormatError          persisted data is malformed (also ValueError)
    │   ├── JsonlDecodeError         (also json.JSONDecodeError)
    │   │   └── TruncatedFileError       torn final line — likely a killed writer
    │   └── IntegrityError           checksum/fingerprint verification failed
    ├── BudgetExceeded           a wall-clock / resource budget ran out
    └── CacheLockTimeout         a per-key cache lock never came free
"""

from __future__ import annotations

import json


class ReproError(Exception):
    """Base class for every error the toolkit raises on purpose.

    Attributes:
        experiment_id: The experiment being run ("E1".."E13"), when known.
        seed: The RNG seed of the failing run, when known.
        stage: Pipeline stage ("run", "read", "write", "check", ...).
    """

    def __init__(
        self,
        message: str,
        *,
        experiment_id: str | None = None,
        seed: int | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.experiment_id = experiment_id
        self.seed = seed
        self.stage = stage

    def context(self) -> dict:
        """The non-empty context fields, for structured logging."""
        fields = {
            "experiment_id": self.experiment_id,
            "seed": self.seed,
            "stage": self.stage,
        }
        return {k: v for k, v in fields.items() if v is not None}

    def __str__(self) -> str:
        # Exception.__str__ directly: KeyError subclasses would otherwise
        # repr() the message.
        base = Exception.__str__(self)
        ctx = self.context()
        if not ctx:
            return base
        tagged = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
        return f"{base} [{tagged}]"


class ExperimentError(ReproError):
    """An experiment run raised, or could not be started."""


class UnknownExperimentError(ExperimentError, KeyError):
    """An experiment id is not in the registry.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working.
    """


class WorkerCrashError(ExperimentError):
    """A pool worker process died instead of returning a result.

    Raised (and recorded) by the parallel runtime's supervisor when a
    worker is killed — OOM killer, segfault in an extension, an
    injected ``kill`` fault — rather than failing in Python.  Unlike a
    plain :class:`ExperimentError` it carries the *process-level*
    evidence, so crash causes can be broken down after the fact.

    Attributes:
        exit_code: The worker's raw exit code when observed (negative
            values are ``-signum`` per :mod:`multiprocessing`).
        exit_signal: Name of the killing signal ("SIGKILL", ...) when
            the exit code maps to one.
        attempt: How many workers this task has crashed so far (1 =
            first crash).
        quarantined: True when the task exhausted its crash budget and
            was quarantined as a poison task instead of requeued.
        reason: Human-readable supervisor verdict ("crash budget
            exhausted", "missed heartbeat", ...).
    """

    def __init__(
        self,
        message: str,
        *,
        exit_code: int | None = None,
        exit_signal: str | None = None,
        attempt: int | None = None,
        quarantined: bool = False,
        reason: str | None = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.exit_code = exit_code
        self.exit_signal = exit_signal
        self.attempt = attempt
        self.quarantined = quarantined
        self.reason = reason

    def crash_info(self) -> dict:
        """The process-level evidence as a JSON-safe dict.

        This is what lands in the ``crash`` field of a
        :class:`repro.runtime.runner.RunRecord`, and what
        ``repro obs report`` uses to break down crash causes.
        """
        return {
            "exit_code": self.exit_code,
            "exit_signal": self.exit_signal,
            "attempt": self.attempt,
            "quarantined": self.quarantined,
            "reason": self.reason,
        }


class CheckFailure(ReproError):
    """One or more shape-checks evaluated false.

    Attributes:
        failed_checks: Names of the checks that failed.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_checks: tuple[str, ...] = (),
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.failed_checks = tuple(failed_checks)


class SpecError(ReproError, ValueError):
    """An experiment spec is invalid or an override cannot be applied.

    Raised by :mod:`repro.experiments.spec` on out-of-range values,
    unknown fields, bad choices, and unparsable ``--set``/``--grid``
    overrides.  The message is written to be shown verbatim to a CLI
    user: one line naming the spec class, the offending field, and the
    valid alternatives.

    Also a :class:`ValueError`, so callers validating configs with a
    generic ``except ValueError`` keep working.
    """


class DataFormatError(ReproError, ValueError):
    """Persisted or exchanged data does not match its declared format."""


class JsonlDecodeError(DataFormatError, json.JSONDecodeError):
    """A JSONL line failed to parse.

    Also a :class:`json.JSONDecodeError`, so pre-taxonomy callers that
    catch that keep working.

    Attributes:
        path: The file being read, as a string.
        line_number: 1-based line of the bad record.
    """

    def __init__(
        self,
        msg: str,
        doc: str = "",
        pos: int = 0,
        *,
        path: str | None = None,
        line_number: int | None = None,
        **context,
    ) -> None:
        json.JSONDecodeError.__init__(self, msg, doc, pos)
        self.path = path
        self.line_number = line_number
        self.experiment_id = context.get("experiment_id")
        self.seed = context.get("seed")
        self.stage = context.get("stage", "read")


class TruncatedFileError(JsonlDecodeError):
    """The final line of a JSONL file is torn (no newline, invalid JSON).

    Distinct from :class:`JsonlDecodeError` on an interior line: a torn
    tail almost always means the writing process was killed mid-write,
    and everything before the tail is salvageable.
    """


class IntegrityError(DataFormatError):
    """Stored data failed checksum or fingerprint verification.

    Raised when bytes on disk do not match the digest they were written
    with: a bit-flipped artifact body, a truncated corpus shard, a
    snapshot manifest whose fields were edited after export.  Distinct
    from :class:`JsonlDecodeError` — the file may *parse* perfectly and
    still be wrong, which is exactly the failure mode a parse-only
    check cannot see.

    The message is one line, written to be shown verbatim by the CLI
    (``repro integrity scrub``, ``repro corpus import``).  Layers that
    can self-heal (the artifact cache, shard loaders, ``repro serve``)
    catch this and route to recompute; layers that cannot (snapshot
    import) surface it.

    Attributes:
        path: The damaged file, as a string, when known.
        kind: Artifact kind or snapshot member ("corpus-shard", ...).
        damage: Damage class from the scrub taxonomy ("bit_flipped",
            "truncated", "bad_header", "orphaned_tmp", "garbled").
        expected: The digest/fingerprint that was declared.
        actual: The digest/fingerprint recomputed from the bytes read.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        kind: str | None = None,
        damage: str | None = None,
        expected: str | None = None,
        actual: str | None = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.path = path
        self.kind = kind
        self.damage = damage
        self.expected = expected
        self.actual = actual

    def context(self) -> dict:
        fields = dict(super().context())
        for key in ("path", "kind", "damage"):
            value = getattr(self, key)
            if value is not None:
                fields[key] = value
        return fields


class CacheLockTimeout(ReproError):
    """A per-key artifact-cache lock could not be acquired in time.

    Raised by :meth:`repro.io.artifacts.ArtifactCache._key_lock` when
    the advisory ``flock`` holder wedges (a stopped process, a hung
    NFS client) past the acquisition deadline.  Callers that can make
    progress without the cache —
    :meth:`~repro.io.artifacts.ArtifactCache.get_or_create` above all —
    catch this and fall back to computing uncached, so one wedged lock
    holder degrades throughput instead of freezing every process that
    shares the cache.

    Attributes:
        lock_path: The lock file that never came free, as a string.
        timeout: The acquisition deadline that expired, in seconds.
    """

    def __init__(
        self,
        message: str,
        *,
        lock_path: str | None = None,
        timeout: float | None = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.lock_path = lock_path
        self.timeout = timeout


class BudgetExceeded(ReproError):
    """A wall-clock or resource budget ran out before the work finished.

    Attributes:
        budget: The limit that was exceeded (seconds for wall-clock).
        spent: How much was actually consumed, when measurable.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: float | None = None,
        spent: float | None = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.budget = budget
        self.spent = spent
