"""Command-line interface.

The subcommands cover the workflows a downstream user reaches for
first:

- ``experiments`` (alias: ``run``): list the E1-E13 suite or run
  selected experiments and print their result tables; ``--set
  key=value`` overrides individual typed spec fields, and
  ``--trace-out``, ``--metrics-out``, and ``--profile-out`` switch on
  the :mod:`repro.obs` observability layer for the run.
- ``sweep``: expand a parameter grid (``--grid seed=0,1,2`` or a JSON
  grid file) over one experiment's spec and run every point through
  the parallel runtime, memoizing results in the artifact cache and
  printing a per-point summary table.
- ``obs``: observability reports — ``obs report TRACE`` renders the
  per-experiment stage-time breakdown (and, when the trace came from a
  server, the per-route serve request breakdown) from an exported
  trace.
- ``serve``: run the fault-tolerant HTTP result service
  (:mod:`repro.serve`) over an artifact cache — cache hits served from
  disk, misses computed in the background, SIGTERM drains gracefully;
  ``--access-log`` adds a structured JSONL row per request.
- ``bench``: the perf-regression ledger — ``bench run`` measures named
  hot paths and appends normalized records to ``BENCH_history.json``,
  ``bench report`` renders the trajectory, and ``bench gate`` exits
  non-zero when the newest entry regressed >20% against the rolling
  baseline.
- ``corpus generate``: generate the synthetic venue corpus to JSONL
  files — or, with ``--papers``, at scale through the shard-parallel
  columnar generator (``repro corpus --papers 1000000 --workers 4``;
  the bare ``repro corpus OUT`` spelling still works).
- ``corpus export`` / ``corpus import``: versioned, content-addressed
  corpus snapshots — export writes a tagged directory of checksummed
  shard objects plus a self-digested manifest, import verifies every
  byte of it (manifest self-digest, config hash, object digests, shard
  fingerprints, merged fingerprint) before anything is used.
- ``integrity``: the data-plane immune system — ``integrity scrub
  CACHE_DIR`` walks an artifact cache verifying every entry end-to-end
  and classifies damage (truncated, bit_flipped, bad_header, garbled,
  orphaned_tmp); ``--repair`` regenerates exactly the damaged shards
  byte-identically and deletes what cannot be regenerated down to a
  clean miss.
- ``cache``: ``cache ls`` / ``cache stats`` list an artifact cache's
  entries (kind, key, size, age) and orphaned-temp-file count without
  reading entry bodies.
- ``detect``: run method-mention detection over a text file.
- ``audit``: evaluate a research-project record (JSON) against the
  Section-5 recommendations and the default ethics checklist.

Spec-level mistakes (unknown ``--set``/``--grid`` keys, out-of-range
or mistyped values) exit with code 2 and a one-line message naming the
spec class and its valid fields — never a traceback.  SIGINT/SIGTERM
during ``run``/``sweep`` exit 130 with a one-line resume hint instead
of a traceback: completed work is already in the checkpoint/cache, so
interruption is a pause, not a loss.

Run ``python -m repro --help`` for usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro import __version__

#: Conventional exit code for "terminated by SIGINT" (128 + 2).
EXIT_INTERRUPTED = 130


@contextmanager
def _graceful_signals():
    """Deliver SIGTERM as :class:`KeyboardInterrupt` for a long command.

    SIGINT already raises KeyboardInterrupt; mapping SIGTERM onto the
    same path means one ``except`` clause covers both Ctrl-C and a
    supervisor's polite kill, and the runner's incremental checkpoint
    writes (flushed per record) are the resume state.  Only installed
    on the main thread — signal handlers cannot be set elsewhere, and
    tests drive these commands from worker threads.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.experiments.registry import describe_table
    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
    from repro.runtime.runner import SuiteRunner

    if args.list:
        print(describe_table().render())
        return 0

    # --trace-out / --metrics-out install real collectors process-wide
    # for the run, so the registry's stage spans and the JSONL row
    # counters land in the same trace/snapshot as the runner's own.
    tracer = Tracer() if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if metrics is not None:
            stack.enter_context(use_metrics(metrics))
        runner = SuiteRunner(
            retries=args.retries,
            timeout=args.timeout,
            keep_going=args.keep_going,
            checkpoint=args.checkpoint,
            seed=args.seed,
            profile_dir=args.profile_out,
            workers=args.workers,
            cache_dir=args.cache_dir,
            max_worker_crashes=args.max_worker_crashes,
            degrade=not args.no_degrade,
        )
        ids = None if args.all else (args.ids or None)
        try:
            with _graceful_signals():
                if args.set:
                    # Explicit field overrides need a concrete spec per
                    # experiment; build them and take the spec-native path.
                    from repro.experiments.registry import (
                        all_experiments,
                        make_spec,
                        spec_class,
                    )
                    from repro.experiments.spec import parse_set_overrides

                    preset = "full" if args.full else "fast"
                    specs = [
                        make_spec(
                            experiment_id,
                            preset,
                            seed=args.seed,
                            overrides=parse_set_overrides(
                                spec_class(experiment_id), args.set
                            ),
                        )
                        for experiment_id in (ids or all_experiments())
                    ]
                    report = runner.run_points(specs)
                else:
                    report = runner.run_all(
                        ids, seed=args.seed, fast=not args.full
                    )
        except KeyboardInterrupt:
            # Completed experiments are already flushed to the
            # checkpoint (the runner appends per record), so nothing is
            # lost: the same command picks up where this one stopped.
            if args.checkpoint:
                hint = f"resume with: repro run --checkpoint {args.checkpoint}"
            else:
                hint = "re-run with --checkpoint PATH to make interrupts resumable"
            print(f"interrupted; {hint}", file=sys.stderr)
            return EXIT_INTERRUPTED
    if tracer is not None:
        count = tracer.export(args.trace_out)
        print(f"wrote {count} spans -> {args.trace_out}", file=sys.stderr)
    if metrics is not None:
        metrics.write(args.metrics_out)
        print(f"wrote metrics -> {args.metrics_out}", file=sys.stderr)
    for record in report:
        if record.result is not None:
            print(record.result.render())
        elif record.from_checkpoint:
            shape = "shapes hold" if record.shape_holds else "shape FAIL"
            print(
                f"{record.experiment_id}: replayed from checkpoint "
                f"({record.status}, {shape})"
            )
        else:
            print(
                f"{record.experiment_id}: {record.status.upper()} "
                f"({record.error_type}) after {record.attempts} attempt(s): "
                f"{record.error}"
            )
        print()

    if args.json_summary:
        payload = json.dumps(report.summary(), indent=2, sort_keys=True)
        if args.json_summary == "-":
            print(payload)
        else:
            Path(args.json_summary).write_text(payload + "\n", encoding="utf-8")
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.errors import UnknownExperimentError
    from repro.experiments.registry import spec_class
    from repro.experiments.spec import parse_set_overrides
    from repro.experiments.sweep import (
        load_grid_file,
        parse_grid_args,
        run_sweep,
    )

    experiment_id = args.experiment
    preset = args.preset
    grid: dict[str, list] = {}
    base: dict = {}
    if args.grid_file:
        data = load_grid_file(args.grid_file)
        experiment_id = experiment_id or data["experiment"]
        preset = preset or data["preset"]
        grid.update(data["grid"])
        base.update(data["base"])
    if experiment_id is None:
        print(
            "error: no experiment named (pass an id or put 'experiment' "
            "in the grid file)",
            file=sys.stderr,
        )
        return 2
    try:
        cls = spec_class(experiment_id)
    except UnknownExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    grid.update(parse_grid_args(cls, args.grid or []))
    base.update(parse_set_overrides(cls, args.set or []))

    try:
        with _graceful_signals():
            report = run_sweep(
                experiment_id,
                grid,
                preset=preset or "fast",
                base_overrides=base,
                workers=args.workers,
                results_dir=args.results_dir,
                cache_dir=args.cache_dir,
                retries=args.retries,
                timeout=args.timeout,
                keep_going=True,
            )
    except KeyboardInterrupt:
        # Finished points are memoized in the artifact cache by config
        # hash, so a re-run replays them instead of recomputing.
        if args.cache_dir:
            hint = (
                f"finished points are cached; resume with: repro sweep ... "
                f"--cache-dir {args.cache_dir}"
            )
        else:
            hint = "re-run with --cache-dir DIR to make interrupts resumable"
        print(f"interrupted; {hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(report.summary_table().render())
    if args.results_dir:
        print(f"\npoint artifacts -> {args.results_dir}", file=sys.stderr)
    if args.json_summary:
        payload = json.dumps(report.summary(), indent=2, sort_keys=True)
        if args.json_summary == "-":
            print(payload)
        else:
            Path(args.json_summary).write_text(payload + "\n", encoding="utf-8")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    from repro.serve.service import ResultService, ServeConfig, run_server

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-serve-")
        print(
            f"no --cache-dir given; serving a throwaway cache at {cache_dir}",
            file=sys.stderr,
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=cache_dir,
        max_inflight=args.max_inflight,
        deadline=args.deadline,
        retry_after=args.retry_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        drain_timeout=args.drain_timeout,
        access_log=args.access_log,
    )
    return run_server(ResultService(config))


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.gate import evaluate_gate, render_trajectory
    from repro.bench.hotpaths import hot_path_names, run_hot_path
    from repro.bench.ledger import append_entries, load_ledger

    if args.bench_command == "run":
        names = args.names or hot_path_names()
        unknown = [n for n in names if n not in hot_path_names()]
        if unknown:
            print(
                f"error: unknown hot path(s) {', '.join(unknown)}; "
                f"known: {', '.join(hot_path_names())}",
                file=sys.stderr,
            )
            return 2
        entries = []
        for name in names:
            measured = run_hot_path(name, repeats=args.repeats)
            for entry in measured:
                print(
                    f"{entry['bench']}.{entry['metric']}: "
                    f"{entry['value']:.6f} {entry['unit']}"
                )
            entries.extend(measured)
        count = append_entries(args.ledger, entries)
        print(f"appended {count} entr{'y' if count == 1 else 'ies'} -> "
              f"{args.ledger}", file=sys.stderr)
        return 0

    entries = load_ledger(args.ledger)
    if args.bench_command == "report":
        print(render_trajectory(entries, args.names or None))
        return 0

    # gate
    names = args.names or sorted({e["bench"] for e in entries})
    if not names:
        print(
            f"error: ledger {args.ledger} is empty and no hot paths were "
            "named; run `repro bench run` first",
            file=sys.stderr,
        )
        return 2
    report = evaluate_gate(
        entries, names, threshold=args.threshold, window=args.window
    )
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import build_report, load_trace, render_report

    spans = load_trace(args.trace)
    if args.json:
        print(json.dumps(build_report(spans, top=args.top), indent=2,
                         sort_keys=True))
    else:
        print(render_report(spans, top=args.top))
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.bibliometrics.synthgen import (
        SyntheticCorpusConfig,
        generate_corpus,
    )
    from repro.io.jsonl import write_jsonl

    if args.papers is not None:
        return _cmd_corpus_sharded(args)
    if args.output is None:
        print("error: output directory required (or use --papers for the "
              "sharded columnar generator)", file=sys.stderr)
        return 2
    config = SyntheticCorpusConfig(
        start_year=args.start_year, end_year=args.end_year, seed=args.seed
    )
    corpus, truth = generate_corpus(config)
    out = Path(args.output)
    records = corpus.to_records()
    for name in ("venues", "authors", "papers"):
        count = write_jsonl(out / f"{name}.jsonl", records[name])
        print(f"wrote {count} {name} -> {out / (name + '.jsonl')}")
    truth_records = [
        {
            "paper_id": paper_id,
            "human_methods": list(families),
            "positionality": paper_id in truth.positionality,
        }
        for paper_id, families in sorted(truth.human_methods.items())
    ]
    count = write_jsonl(out / "ground_truth.jsonl", truth_records)
    print(f"wrote {count} ground-truth labels -> {out / 'ground_truth.jsonl'}")
    return 0


def _cmd_corpus_sharded(args: argparse.Namespace) -> int:
    """``repro corpus --papers N``: the columnar shard-parallel path.

    Shards stream through the artifact cache (``--cache-dir``, default
    ``<output>/shards`` when an output directory is given); the corpus
    fingerprint printed at the end is identical at any ``--workers``
    and on warm-cache replays.
    """
    import time as _time

    from repro.bibliometrics.shardgen import (
        ShardedCorpusConfig,
        generate_columnar_corpus,
    )

    config = ShardedCorpusConfig(
        start_year=args.start_year,
        end_year=args.end_year,
        seed=args.seed,
        total_papers=args.papers,
        shard_size=args.shard_size,
    )
    cache_dir = args.cache_dir
    if cache_dir is None and args.output is not None:
        cache_dir = str(Path(args.output) / "shards")
    if args.stream and cache_dir is None:
        print("error: --stream needs --cache-dir (or an output directory) "
              "to stream shards through", file=sys.stderr)
        return 2
    done = {"n": 0}

    def progress(meta: dict) -> None:
        done["n"] += 1
        print(f"  shard {meta['shard']:4d}  {meta['n_papers']:7d} papers  "
              f"[{done['n']} done]", flush=True)

    start = _time.perf_counter()
    corpus = generate_columnar_corpus(
        config,
        workers=max(1, args.workers),
        cache_dir=cache_dir,
        stream=args.stream,
        on_shard=progress,
    )
    elapsed = _time.perf_counter() - start
    fingerprint = corpus.fingerprint()
    rate = len(corpus) / elapsed if elapsed > 0 else float("inf")
    print(f"generated {len(corpus)} papers in {corpus.n_shards} shards "
          f"({args.workers} worker(s)) in {elapsed:.2f}s — {rate:,.0f} papers/s")
    print(f"fingerprint: {fingerprint}")
    if args.output is not None:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        manifest = {
            "config": config.to_dict(),
            "n_papers": len(corpus),
            "n_shards": corpus.n_shards,
            "shard_sizes": corpus.shard_sizes(),
            "fingerprint": fingerprint,
            "cache_dir": cache_dir,
        }
        (out / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote manifest -> {out / 'manifest.json'}")
    return 0


def _sharded_config(args: argparse.Namespace):
    """Build a ShardedCorpusConfig from the shared corpus flags."""
    from repro.bibliometrics.shardgen import ShardedCorpusConfig

    return ShardedCorpusConfig(
        start_year=args.start_year,
        end_year=args.end_year,
        seed=args.seed,
        total_papers=args.papers,
        shard_size=args.shard_size,
    )


def _cmd_corpus_export(args: argparse.Namespace) -> int:
    from repro.integrity.snapshot import export_snapshot

    manifest = export_snapshot(
        args.directory,
        _sharded_config(args),
        tag=args.tag,
        workers=max(1, args.workers),
        cache_dir=args.cache_dir,
        force=args.force,
    )
    print(f"snapshot {manifest['tag']!r} -> {args.directory}")
    print(f"  papers:      {manifest['n_papers']:,} "
          f"in {len(manifest['shards'])} shard(s)")
    print(f"  fingerprint: {manifest['fingerprint']}")
    print(f"  config_hash: {manifest['config_hash']}")
    return 0


def _cmd_corpus_import(args: argparse.Namespace) -> int:
    from repro.integrity.snapshot import import_snapshot, load_manifest

    corpus = import_snapshot(args.directory, cache_dir=args.cache_dir)
    # import_snapshot verified the manifest already; re-reading it here
    # is a cheap way to get the tag and fingerprint for the summary.
    manifest = load_manifest(args.directory)
    print(f"verified snapshot {manifest['tag']!r}: {len(corpus):,} papers "
          f"in {corpus.n_shards} shard(s)")
    print(f"  fingerprint: {manifest['fingerprint']}")
    if args.cache_dir is not None:
        print(f"  hydrated cache -> {args.cache_dir}")
    return 0


def _cmd_integrity_scrub(args: argparse.Namespace) -> int:
    from repro.integrity.scrub import repair_cache, scrub_cache

    report = scrub_cache(args.cache_dir)
    if args.repair and report.damaged:
        report = repair_cache(args.cache_dir, report)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"scrubbed {report.entries} entr"
              f"{'y' if report.entries == 1 else 'ies'} "
              f"({report.bytes_scanned:,} bytes): "
              f"{report.intact} intact, {report.damaged} damaged")
        for finding in report.findings:
            line = (f"  {finding.damage:<12s} "
                    f"{Path(finding.path).name}: {finding.detail}")
            if finding.repair is not None:
                line += f" [{finding.repair}]"
            print(line)
        if report.damaged and not args.repair:
            print("re-run with --repair to regenerate or clear the damage",
                  file=sys.stderr)
    if not report.damaged:
        return 0
    # After --repair every finding was regenerated byte-identically or
    # deleted down to a clean miss — the cache is healthy again.
    return 0 if args.repair else 1


def _format_age(seconds: float) -> str:
    """Compact one-unit age: ``42s``, ``13m``, ``7h``, ``3d``."""
    if seconds < 60:
        return f"{int(seconds)}s"
    if seconds < 3600:
        return f"{int(seconds / 60)}m"
    if seconds < 86400:
        return f"{int(seconds / 3600)}h"
    return f"{int(seconds / 86400)}d"


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.integrity.scrub import iter_entries

    root = Path(args.cache_dir)
    entries = list(iter_entries(root))
    orphans = sum(1 for _ in root.rglob("*.tmp")) if root.exists() else 0

    if args.cache_command == "ls":
        if not entries and not orphans:
            print(f"cache {root}: empty")
            return 0
        print(f"{'KIND':<16} {'KEY':<16} {'SIZE':>12} {'AGE':>6}")
        for entry in entries:
            key = entry.key if len(entry.key) <= 15 else entry.key[:12] + "..."
            print(f"{entry.kind:<16} {key:<16} {entry.size:>12,} "
                  f"{_format_age(entry.age_seconds):>6}")
        if orphans:
            print(f"+ {orphans} orphaned temp file(s) — "
                  "`repro integrity scrub --repair` clears them",
                  file=sys.stderr)
        return 0

    # stats: per-kind rollup — entries, bytes, share of the cache, and
    # age span, so operators can see which backend (one monolithic
    # shared-corpus stream vs many corpus-shard payloads) fills the
    # cache and how stale each kind is.
    by_kind: dict[str, dict] = {}
    for entry in entries:
        bucket = by_kind.setdefault(
            entry.kind,
            {"entries": 0, "bytes": 0, "newest_age": None, "oldest_age": None},
        )
        bucket["entries"] += 1
        bucket["bytes"] += entry.size
        age = entry.age_seconds
        if bucket["newest_age"] is None or age < bucket["newest_age"]:
            bucket["newest_age"] = age
        if bucket["oldest_age"] is None or age > bucket["oldest_age"]:
            bucket["oldest_age"] = age
    total_bytes = sum(bucket["bytes"] for bucket in by_kind.values())
    for bucket in by_kind.values():
        bucket["bytes_share"] = (
            bucket["bytes"] / total_bytes if total_bytes else 0.0
        )
    if args.json:
        payload = {
            "root": str(root),
            "entries": len(entries),
            "bytes": total_bytes,
            "orphaned_tmp": orphans,
            "kinds": {
                kind: dict(bucket) for kind, bucket in sorted(by_kind.items())
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache {root}: {len(entries)} entr"
          f"{'y' if len(entries) == 1 else 'ies'}, {total_bytes:,} bytes, "
          f"{orphans} orphaned temp file(s)")
    for kind, bucket in sorted(by_kind.items()):
        ages = (f"{_format_age(bucket['newest_age'])}-"
                f"{_format_age(bucket['oldest_age'])}")
        print(f"  {kind:<16} {bucket['entries']:>6} entries  "
              f"{bucket['bytes']:>12,} bytes  "
              f"{bucket['bytes_share']:>5.1%}  age {ages}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.bibliometrics.methods_detect import detect_methods

    text = Path(args.file).read_text(encoding="utf-8")
    mentions = detect_methods(text)
    if not mentions:
        print("no method mentions detected")
        return 0
    for mention in mentions:
        tag = "human" if mention.is_human_method else "quant"
        print(f"{mention.start:8d}  {tag:5s}  {mention.family:15s}  {mention.phrase}")
    families = sorted({m.family for m in mentions})
    print(f"\nfamilies: {', '.join(families)}")
    return 0


def _project_from_json(payload: dict):
    """Build a ResearchProject from the plain-JSON record format."""
    from repro.core.par import (
        EngagementEvent,
        EngagementKind,
        EngagementLedger,
    )
    from repro.core.positionality import PositionalityStatement
    from repro.core.project import (
        ConversationRecord,
        Partner,
        ResearchProject,
    )
    from repro.core.stages import ResearchStage

    project = ResearchProject(
        name=payload["name"], description=payload.get("description", "")
    )
    for partner in payload.get("partners", []):
        project.add_partner(Partner(**partner))
    ledger = EngagementLedger()
    for event in payload.get("engagements", []):
        ledger.record(
            EngagementEvent(
                month=event["month"],
                stage=ResearchStage(event["stage"]),
                partner_id=event["partner_id"],
                kind=EngagementKind(event["kind"]),
                description=event.get("description", ""),
                fed_back_into_design=event.get("fed_back_into_design", False),
            )
        )
    project.ledger = ledger
    for conversation in payload.get("conversations", []):
        record = ConversationRecord(
            conv_id=conversation["conv_id"],
            partner_id=conversation["partner_id"],
            month=conversation["month"],
            summary=conversation.get("summary", ""),
            how_it_informed=conversation.get("how_it_informed", ""),
            quotes=tuple(conversation.get("quotes", ())),
            open_questions=tuple(conversation.get("open_questions", ())),
        )
        project.record_conversation(record)
    for statement in payload.get("positionality", []):
        project.positionality.append(PositionalityStatement(**statement))
    project.ethics_plan = payload.get("ethics_plan", {})
    return project


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.recommendations import audit_project
    from repro.ethics.irb import default_checklist

    payload = json.loads(Path(args.file).read_text(encoding="utf-8"))
    project = _project_from_json(payload)
    audit = audit_project(project)
    print(f"project: {project.name}")
    print(f"  partnerships:  {audit.partnerships.score:.2f}")
    print(f"  conversations: {audit.conversations.score:.2f}")
    print(f"  positionality: {audit.positionality.score:.2f}")
    print(f"  overall:       {audit.overall:.2f}")
    for finding in audit.all_findings():
        print(f"  finding: {finding}")

    if project.ethics_plan:
        result = default_checklist().evaluate(project.ethics_plan)
        status = "APPROVED" if result.approved else "NOT APPROVED"
        print(f"\nethics checklist: {status}")
        for item_id in result.failed:
            print(f"  failed:      {item_id}")
        for item_id in result.unaddressed:
            print(f"  unaddressed: {item_id}")
    else:
        print("\nethics checklist: no ethics_plan in record (skipped)")
    return 0 if audit.overall >= args.threshold else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Human-centered networking research toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments",
        aliases=["run"],
        help="list or run the E1-E13 experiment suite",
    )
    experiments.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    experiments.add_argument("--list", action="store_true", help="list and exit")
    experiments.add_argument(
        "--all", action="store_true",
        help="run the whole suite (explicit form of passing no ids)",
    )
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--full", action="store_true", help="full problem sizes (slower)"
    )
    experiments.add_argument(
        "--keep-going", action="store_true",
        help="record a crashing experiment and run the rest (exit non-zero)",
    )
    experiments.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed experiment up to N times with backoff",
    )
    experiments.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock deadline across its attempts",
    )
    experiments.add_argument(
        "--checkpoint", metavar="PATH",
        help="JSONL checkpoint file; completed experiments are skipped on rerun",
    )
    experiments.add_argument(
        "--json-summary", metavar="PATH",
        help="write a machine-readable run summary ('-' for stdout)",
    )
    experiments.add_argument(
        "--trace-out", metavar="PATH",
        help="export a JSONL trace of suite/experiment/attempt/stage spans",
    )
    experiments.add_argument(
        "--metrics-out", metavar="PATH",
        help="write runner and I/O metrics (counters/gauges/histograms) as JSON",
    )
    experiments.add_argument(
        "--profile-out", metavar="DIR",
        help="dump a cProfile capture per experiment into DIR (<id>.pstats)",
    )
    experiments.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run experiments on N worker processes (1 = in-process); "
        "output is deterministic and identical to a sequential run",
    )
    experiments.add_argument(
        "--cache-dir", metavar="DIR",
        help="on-disk artifact cache shared by workers and across runs "
        "(default: a throwaway directory when --workers > 1)",
    )
    experiments.add_argument(
        "--max-worker-crashes", type=int, default=2, metavar="N",
        help="quarantine an experiment after it kills N consecutive pool "
        "workers instead of requeueing it again (parallel runs)",
    )
    experiments.add_argument(
        "--no-degrade", action="store_true",
        help="never fall back to sequential in-process execution when the "
        "worker pool keeps breaking; keep rebuilding pools instead",
    )
    experiments.add_argument(
        "--set", action="append", metavar="KEY=VALUE", default=[],
        help="override a typed spec field (repeatable; dotted paths reach "
        "nested blocks, e.g. corpus.start_year=2010)",
    )
    experiments.set_defaults(func=_cmd_experiments)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a parameter grid over one experiment's typed spec",
    )
    sweep.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (optional when the grid file names one)",
    )
    sweep.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2,...", default=[],
        help="one sweep axis (repeatable); the run is the cross product",
    )
    sweep.add_argument(
        "--grid-file", metavar="PATH",
        help="JSON grid file: {experiment, grid, preset, base}",
    )
    sweep.add_argument(
        "--preset", choices=["fast", "full"], default=None,
        help="base preset the grid perturbs (default: fast)",
    )
    sweep.add_argument(
        "--set", action="append", metavar="KEY=VALUE", default=[],
        help="fixed override applied to every point (repeatable)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run points on N worker processes (1 = in-process)",
    )
    sweep.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed point up to N times with backoff",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock deadline across its attempts",
    )
    sweep.add_argument(
        "--results-dir", metavar="DIR",
        help="write <experiment>-<hash>/ result.txt + record.json per point",
    )
    sweep.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache; finished points are memoized by config hash "
        "and replayed on re-run",
    )
    sweep.add_argument(
        "--json-summary", metavar="PATH",
        help="write a machine-readable sweep summary ('-' for stdout)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="run the fault-tolerant HTTP result service over a cache",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8737,
        help="bind port (0 picks a free one)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per background compute job",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache to serve (shared with repro sweep; "
        "default: a throwaway directory)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="admission-control bound; extra requests are shed with 429",
    )
    serve.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="per-request budget; cold requests still computing get 503",
    )
    serve.add_argument(
        "--retry-after", type=float, default=2.0, metavar="SECONDS",
        help="Retry-After suggested on 429/503 responses",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive compute failures that trip a key's circuit",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="how long a tripped circuit rejects before a probe retry",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="graceful-drain budget for in-flight requests and jobs",
    )
    serve.add_argument(
        "--access-log", metavar="PATH",
        help="append one structured JSONL row per request (request id, "
        "route, status, duration, config hash, cache source)",
    )
    serve.set_defaults(func=_cmd_serve)

    bench = subparsers.add_parser(
        "bench",
        help="measure named hot paths and gate them against the ledger",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    default_ledger = "benchmarks/results/BENCH_history.json"
    bench_run = bench_sub.add_parser(
        "run",
        help="measure hot paths (scanner, tfidf, suite, serve_p95, "
        "synthgen, corpus_scan, scrub) and append normalized records "
        "to the ledger",
    )
    bench_run.add_argument(
        "names", nargs="*",
        help="hot paths to measure (default: all of them)",
    )
    bench_run.add_argument(
        "--ledger", metavar="PATH", default=default_ledger,
        help=f"ledger file to append to (default: {default_ledger})",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=5, metavar="N",
        help="micro hot paths record the minimum over N runs",
    )
    bench_run.set_defaults(func=_cmd_bench)
    bench_report = bench_sub.add_parser(
        "report", help="render the ledger's per-hot-path trajectory"
    )
    bench_report.add_argument("names", nargs="*", help="filter to these benches")
    bench_report.add_argument(
        "--ledger", metavar="PATH", default=default_ledger,
        help=f"ledger file to read (default: {default_ledger})",
    )
    bench_report.set_defaults(func=_cmd_bench)
    bench_gate = bench_sub.add_parser(
        "gate",
        help="fail (exit 1) when a named hot path's newest ledger entry "
        "regressed beyond the threshold",
    )
    bench_gate.add_argument(
        "names", nargs="*",
        help="hot paths to gate (default: every bench in the ledger)",
    )
    bench_gate.add_argument(
        "--ledger", metavar="PATH", default=default_ledger,
        help=f"ledger file to read (default: {default_ledger})",
    )
    bench_gate.add_argument(
        "--threshold", type=float, default=0.20, metavar="FRACTION",
        help="fail when latest > (1 + FRACTION) x baseline (default 0.20)",
    )
    bench_gate.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="baseline = median of the last N prior entries",
    )
    bench_gate.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable gate report",
    )
    bench_gate.set_defaults(func=_cmd_bench)

    obs = subparsers.add_parser(
        "obs", help="observability reports over exported traces"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="per-experiment stage-time breakdown from a --trace-out file",
    )
    obs_report.add_argument("trace", help="trace file written by --trace-out")
    obs_report.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest stages to show",
    )
    obs_report.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of tables",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    corpus = subparsers.add_parser(
        "corpus", help="generate the synthetic venue corpus, or export/"
        "import tagged verified snapshots of it"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_gen = corpus_sub.add_parser(
        "generate",
        help="generate the corpus (JSONL dump, or sharded columnar at "
        "scale with --papers); `repro corpus OUT` still means this",
    )
    corpus_gen.add_argument(
        "output", nargs="?", default=None,
        help="output directory (legacy JSONL dump; optional with --papers)",
    )
    corpus_gen.add_argument("--start-year", type=int, default=2000)
    corpus_gen.add_argument("--end-year", type=int, default=2025)
    corpus_gen.add_argument("--seed", type=int, default=0)
    corpus_gen.add_argument(
        "--papers", type=int, default=None,
        help="total papers: switch to the shard-parallel columnar generator",
    )
    corpus_gen.add_argument(
        "--workers", type=int, default=1,
        help="shard-generation worker processes (never changes the output)",
    )
    corpus_gen.add_argument(
        "--shard-size", type=int, default=25000,
        help="papers per shard (part of corpus identity)",
    )
    corpus_gen.add_argument(
        "--stream", action="store_true",
        help="keep at most one shard in RAM (needs a cache dir)",
    )
    corpus_gen.add_argument(
        "--cache-dir", default=None,
        help="artifact cache shards stream through "
        "(default: <output>/shards when output is given)",
    )
    corpus_gen.set_defaults(func=_cmd_corpus)

    corpus_export = corpus_sub.add_parser(
        "export",
        help="write a tagged, content-addressed, self-verifying corpus "
        "snapshot directory",
    )
    corpus_export.add_argument("directory", help="snapshot directory to create")
    corpus_export.add_argument(
        "--tag", required=True,
        help="snapshot tag recorded (and digest-protected) in the manifest",
    )
    corpus_export.add_argument("--start-year", type=int, default=2000)
    corpus_export.add_argument("--end-year", type=int, default=2025)
    corpus_export.add_argument("--seed", type=int, default=0)
    corpus_export.add_argument(
        "--papers", type=int, default=100_000,
        help="total papers in the snapshotted corpus",
    )
    corpus_export.add_argument(
        "--shard-size", type=int, default=25000,
        help="papers per shard (part of corpus identity)",
    )
    corpus_export.add_argument(
        "--workers", type=int, default=1,
        help="shard-generation worker processes (never changes the bytes)",
    )
    corpus_export.add_argument(
        "--cache-dir", default=None,
        help="warm artifact cache to replay shards from instead of "
        "regenerating",
    )
    corpus_export.add_argument(
        "--force", action="store_true",
        help="overwrite an existing snapshot manifest",
    )
    corpus_export.set_defaults(func=_cmd_corpus_export)

    corpus_import = corpus_sub.add_parser(
        "import",
        help="verify a snapshot end-to-end (manifest self-digest, object "
        "digests, shard fingerprints) and optionally hydrate a cache",
    )
    corpus_import.add_argument("directory", help="snapshot directory to verify")
    corpus_import.add_argument(
        "--cache-dir", default=None,
        help="also land every verified shard in this artifact cache so "
        "generators replay the snapshot warm",
    )
    corpus_import.set_defaults(func=_cmd_corpus_import)

    integrity = subparsers.add_parser(
        "integrity",
        help="verify and repair the on-disk data plane (artifact caches)",
    )
    integrity_sub = integrity.add_subparsers(
        dest="integrity_command", required=True
    )
    integrity_scrub = integrity_sub.add_parser(
        "scrub",
        help="walk a cache verifying every entry end-to-end; classify "
        "damage, optionally repair it (exit 1 on unrepaired damage)",
    )
    integrity_scrub.add_argument(
        "cache_dir", help="artifact cache directory to scrub"
    )
    integrity_scrub.add_argument(
        "--repair", action="store_true",
        help="heal findings: regenerate damaged corpus shards "
        "byte-identically from their header config, delete the rest "
        "down to a clean miss",
    )
    integrity_scrub.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable scrub report",
    )
    integrity_scrub.set_defaults(func=_cmd_integrity_scrub)

    cache = subparsers.add_parser(
        "cache", help="inspect an artifact cache without reading bodies"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser(
        "ls", help="list entries (kind, key, size, age)"
    )
    cache_ls.add_argument("cache_dir", help="artifact cache directory")
    cache_ls.set_defaults(func=_cmd_cache)
    cache_stats = cache_sub.add_parser(
        "stats", help="per-kind entry/byte rollup plus orphaned-tmp count"
    )
    cache_stats.add_argument("cache_dir", help="artifact cache directory")
    cache_stats.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable rollup",
    )
    cache_stats.set_defaults(func=_cmd_cache)

    detect = subparsers.add_parser(
        "detect", help="detect method mentions in a text file"
    )
    detect.add_argument("file", help="plain-text file to scan")
    detect.set_defaults(func=_cmd_detect)

    audit = subparsers.add_parser(
        "audit", help="audit a research-project JSON record (Section 5)"
    )
    audit.add_argument("file", help="project record (JSON)")
    audit.add_argument(
        "--threshold", type=float, default=0.0,
        help="exit non-zero when the overall score is below this",
    )
    audit.set_defaults(func=_cmd_audit)

    return parser


#: ``repro corpus`` sub-subcommands; anything else after ``corpus`` is
#: the legacy ``repro corpus [OUT] [flags]`` spelling of ``generate``.
_CORPUS_SUBCOMMANDS = ("generate", "export", "import")


def _normalize_argv(argv: list[str]) -> list[str]:
    """Keep ``repro corpus OUT``-style invocations working.

    ``corpus`` grew ``generate``/``export``/``import`` sub-subcommands;
    when the token after ``corpus`` is not one of them (a directory, a
    flag like ``--papers``), splice ``generate`` in so existing scripts
    and Makefiles parse unchanged.  Bare ``repro corpus`` and ``repro
    corpus --help`` are left alone so argparse can show the subcommand
    listing.
    """
    if argv[:1] != ["corpus"]:
        return argv
    rest = argv[1:]
    if not rest or rest[0] in _CORPUS_SUBCOMMANDS or rest[0] in ("-h", "--help"):
        return argv
    return ["corpus", "generate", *rest]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(
        _normalize_argv(sys.argv[1:] if argv is None else list(argv))
    )
    from repro.errors import IntegrityError, SpecError

    try:
        return args.func(args)
    except SpecError as exc:
        # Bad --set/--grid input is a usage error: one actionable line
        # (the message names the spec class and its valid fields), no
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except IntegrityError as exc:
        # Damaged or tampered data (a failed snapshot import, a strict
        # verify) is a data error, not a usage error: the typed one-line
        # message says exactly what failed to hold, no traceback.
        print(f"integrity error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped to a consumer (head, less) that closed early.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
