"""A small synchronous client for the result service.

The harness tests, the load-generator benchmark, and ``make
serve-smoke`` all poke the server over real TCP; this module is the
one place that speaks the client side (stdlib :mod:`http.client`), so
they agree on timeouts, JSON decoding, and header access.  It also
carries the load generator itself — closed-loop worker threads
hammering one URL and recording per-request latency — because the
benchmark and the smoke test share that too.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import percentile

__all__ = ["FetchResult", "LoadReport", "fetch", "percentile", "run_load"]


@dataclass
class FetchResult:
    """One response as the client saw it.

    Attributes:
        status: HTTP status code.
        headers: Response headers, lowercase names.
        body: Raw body bytes.
        elapsed: Wall-clock seconds for the round trip.
    """

    status: int
    headers: dict[str, str]
    body: bytes
    elapsed: float

    def json(self) -> dict:
        """The body decoded as JSON (raises on non-JSON bodies)."""
        return json.loads(self.body.decode("utf-8"))


def fetch(
    host: str,
    port: int,
    path: str,
    *,
    headers: dict[str, str] | None = None,
    method: str = "GET",
    timeout: float = 30.0,
) -> FetchResult:
    """One request against a running service."""
    started = time.monotonic()
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        return FetchResult(
            status=response.status,
            headers={k.lower(): v for k, v in response.getheaders()},
            body=body,
            elapsed=time.monotonic() - started,
        )
    finally:
        conn.close()


@dataclass
class LoadReport:
    """What one closed-loop load run observed.

    Attributes:
        clients: Concurrent worker threads.
        requests: Completed requests (all statuses).
        statuses: Count per HTTP status code.
        latencies: Per-request seconds, arrival order per worker.
        elapsed: Wall-clock seconds for the whole run.
    """

    clients: int
    requests: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    elapsed: float = 0.0

    def summary(self) -> dict:
        """The JSON row the benchmark stores: percentiles + status mix."""
        return {
            "clients": self.clients,
            "requests": self.requests,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "p50_ms": round(percentile(self.latencies, 0.50) * 1000, 3),
            "p95_ms": round(percentile(self.latencies, 0.95) * 1000, 3),
            "p99_ms": round(percentile(self.latencies, 0.99) * 1000, 3),
            "elapsed_s": round(self.elapsed, 3),
            "rps": round(self.requests / self.elapsed, 1) if self.elapsed else 0.0,
        }


def run_load(
    host: str,
    port: int,
    path: str,
    *,
    clients: int,
    requests_per_client: int,
    timeout: float = 30.0,
) -> LoadReport:
    """Closed-loop load: ``clients`` threads, each fetching back-to-back."""
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def worker() -> None:
        for _ in range(requests_per_client):
            try:
                result = fetch(host, port, path, timeout=timeout)
            except OSError:
                with lock:
                    report.requests += 1
                    report.statuses[0] = report.statuses.get(0, 0) + 1
                continue
            with lock:
                report.requests += 1
                report.statuses[result.status] = (
                    report.statuses.get(result.status, 0) + 1
                )
                report.latencies.append(result.elapsed)

    threads = [
        threading.Thread(target=worker, name=f"load-{i}") for i in range(clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed = time.monotonic() - started
    return report
