"""Minimal HTTP/1.1 framing over :mod:`asyncio` streams.

The result service (:mod:`repro.serve.service`) speaks a deliberately
small slice of HTTP — ``GET``/``HEAD`` requests, JSON responses, one
request per connection — so this module implements exactly that slice
on the stdlib streams API instead of pulling in a web framework (the
repository's no-new-dependencies rule).  Everything here is pure
framing: parse a request head into a :class:`Request`, render a
:class:`Response` to bytes.  Policy (routing, caching, shedding) lives
in the service.

Hostile or broken input never raises past :func:`read_request`: an
over-long or malformed head raises :class:`BadRequest`, which the
connection handler turns into a ``400`` and a closed connection — a
garbage client cannot take the server down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "BadRequest",
    "REASONS",
    "Request",
    "Response",
    "json_response",
    "read_request",
]

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on the request head (request line + headers).  Far above
#: any legitimate query this API can express, far below anything that
#: could pressure memory.
MAX_HEAD_BYTES = 32 * 1024

#: Upper bound on a single head line.
MAX_LINE_BYTES = 8 * 1024


class BadRequest(Exception):
    """The request head is malformed, over-long, or not HTTP."""


@dataclass
class Request:
    """One parsed request head.

    Attributes:
        method: Uppercased method ("GET", "HEAD", ...).
        target: The raw request target, query string included.
        path: The decoded path component.
        query: Query parameters, each name mapping to every value it
            was given (``?set=a=1&set=b=2`` keeps both).
        headers: Header fields with lowercased names; duplicate fields
            keep the last value (none of the headers this service reads
            are list-valued).
    """

    method: str
    target: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    def param(self, name: str, default: str | None = None) -> str | None:
        """The first value of query parameter ``name``, or ``default``."""
        values = self.query.get(name)
        return values[0] if values else default

    def params(self, name: str) -> list[str]:
        """Every value of query parameter ``name`` (possibly empty)."""
        return list(self.query.get(name, ()))


@dataclass
class Response:
    """One response, rendered to wire bytes by :meth:`encode`.

    ``body`` is always the full representation; :meth:`encode` drops it
    for ``HEAD`` requests and ``304``s while keeping the
    ``Content-Length`` a ``GET`` would have produced, as the RFC
    requires.
    """

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self, *, head_only: bool = False) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
            "Server: repro-serve",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if head_only or self.status == 304:
            return head
        return head + self.body


def json_response(
    status: int, payload: object, headers: dict[str, str] | None = None
) -> Response:
    """A :class:`Response` carrying ``payload`` as sorted-key JSON."""
    body = (json.dumps(payload, sort_keys=True, ensure_ascii=False) + "\n").encode(
        "utf-8"
    )
    return Response(status=status, body=body, headers=dict(headers or {}))


async def _read_line(reader, budget: int) -> bytes:
    line = await reader.readline()
    if len(line) > min(MAX_LINE_BYTES, budget):
        raise BadRequest("header line too long")
    if line and not line.endswith(b"\n"):
        # readline() returned a partial line: the peer hit the stream
        # limit or closed mid-line.
        raise BadRequest("truncated header line")
    return line


async def read_request(reader) -> Request | None:
    """Parse one request head from ``reader``.

    Returns None when the connection closed cleanly before any bytes
    arrived (a client that connected and left).  Raises
    :class:`BadRequest` on anything that is not a well-formed HTTP/1.x
    request head within the size bounds.  A request body, if announced,
    is *not* consumed — this service answers every request with
    ``Connection: close``, so unread bytes die with the connection.
    """
    budget = MAX_HEAD_BYTES
    request_line = await _read_line(reader, budget)
    if not request_line:
        return None
    budget -= len(request_line)
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].upper().startswith("HTTP/1"):
        raise BadRequest(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader, budget)
        if not line:
            raise BadRequest("connection closed inside the header block")
        budget -= len(line)
        if budget <= 0:
            raise BadRequest("request head exceeds the size bound")
        stripped = line.strip()
        if not stripped:
            break
        name, sep, value = stripped.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = parse_qs(split.query, keep_blank_values=True)
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
    )
