"""The fault-tolerant result service.

``repro serve`` turns the compute stack into a long-lived process: a
stdlib-asyncio HTTP server whose GET endpoints are a *read-through*
view of the :class:`~repro.io.artifacts.ArtifactCache`.  A hit is
served straight from disk; a miss dispatches a supervised
:class:`~repro.runtime.runner.SuiteRunner` job through
:class:`~repro.serve.jobs.ComputeJobManager` and answers within the
request deadline — with the result if the job finishes in time,
otherwise with ``503 + Retry-After`` while the job keeps running, so
the retry lands on a warm cache.

The degradation ladder, from healthy to shedding:

1. **Hit** — ``200`` with ``ETag`` (the ``config_hash``); a matching
   ``If-None-Match`` short-circuits to ``304``.
2. **Miss, compute in time** — ``200``, result now cached.
3. **Miss, deadline first** — ``503 + Retry-After``; the job is
   *abandoned, not cancelled* and finishes in the background.
4. **Compute keeps failing** — the per-key circuit breaker trips;
   requests for that key get an immediate ``503 + Retry-After``
   without burning another doomed job.
5. **Saturated** — more than ``max_inflight`` requests in flight:
   admission control sheds with ``429 + Retry-After`` before any work
   happens.
6. **Draining** — SIGTERM: ``/readyz`` flips to ``503``, the listener
   closes, in-flight requests finish, background jobs get
   ``drain_timeout`` to checkpoint (their cache write *is* the
   checkpoint).

At every rung the process stays alive; a crashed compute worker is the
runner's problem (requeue → quarantine), never the server's.

Every request is counted (``serve.*``) and spanned (``serve.request``),
so the chaos tests can assert the contract — "exactly one compute job
for N coalesced requests" is a counter equality, not a log grep.  On
top of the counters, each request gets an ``X-Request-Id`` (generated,
or the client's own when sane), a per-route × per-status latency
histogram observation, and — when ``ServeConfig.access_log`` is set —
one structured JSONL access-log row carrying the request id, route,
status, duration, config hash, and cache source.  ``/metrics`` is
content-negotiated: ``Accept: text/plain`` returns the Prometheus text
exposition, anything else the JSON snapshot.
"""

from __future__ import annotations

import asyncio
import math
import random
import re
import signal
import sys
import time
import uuid
from dataclasses import asdict, dataclass, replace
from typing import Callable

from repro.errors import SpecError, UnknownExperimentError
from repro.io.artifacts import ArtifactCache, artifact_key
from repro.io.jsonl import append_jsonl
from repro.obs.metrics import MetricsRegistry, labeled, render_prometheus
from repro.obs.tracing import current_tracer
from repro.serve.http import (
    BadRequest,
    Request,
    Response,
    json_response,
    read_request,
)
from repro.serve.jobs import (
    CircuitBreaker,
    CircuitOpen,
    ComputeFailed,
    ComputeJobManager,
    compute_experiment_rows,
)

__all__ = [
    "CORPUS_STATS_KIND",
    "ResultServer",
    "ResultService",
    "ServeConfig",
    "ServerThread",
    "compute_corpus_stats",
    "route_template",
    "run_server",
]

#: Artifact-cache kind for the corpus analytics endpoint.
CORPUS_STATS_KIND = "corpus-stats"

#: Request ids a client may supply: sane length, log-safe alphabet.
_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def route_template(path: str) -> str:
    """Collapse a request path onto its route template.

    Per-route metrics must not key on raw paths — every distinct
    experiment id or config hash would mint a new histogram, and a
    hostile client could mint millions.  Parameterized segments
    collapse (``/v1/result/E7/abc123`` → ``/v1/result/{id}/{hash}``),
    the fixed endpoints map to themselves, and everything else —
    including every 404-bound probe — lands in one ``(unmatched)``
    bucket.
    """
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] == "v1":
        if len(parts) == 3 and parts[1] == "result":
            return "/v1/result/{id}"
        if len(parts) == 4 and parts[1] == "result":
            return "/v1/result/{id}/{hash}"
        if len(parts) == 3 and parts[1] == "grid":
            return "/v1/grid/{id}"
        if len(parts) == 2 and parts[1] in ("experiments", "corpus"):
            return f"/v1/{parts[1]}"
        return "(unmatched)"
    if len(parts) == 1 and parts[0] in ("metrics", "healthz", "readyz"):
        return f"/{parts[0]}"
    return "(unmatched)"


def _request_id(request: Request) -> str:
    """The request's id: the client's ``X-Request-Id`` when it is sane
    (so ids propagate through a proxy chain), a fresh one otherwise."""
    supplied = request.headers.get("x-request-id", "")
    if _REQUEST_ID_OK.match(supplied):
        return supplied
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one service instance (CLI flags map 1:1 onto these).

    Attributes:
        host: Bind address.
        port: Bind port (0 picks a free one; see ``ResultServer.port``).
        workers: Process workers per compute job (``SuiteRunner(workers=)``).
        cache_dir: Artifact-cache root the service reads through to.
        max_inflight: Admission-control bound; request N+1 is shed
            with ``429``.
        deadline: Per-request wall-clock budget in seconds; a cold
            request still computing at the deadline gets ``503``.
        retry_after: Seconds suggested in ``Retry-After`` for ``429``
            and deadline/compute ``503``s (breaker ``503``s use the
            remaining cooldown instead).
        retry_jitter: Bounded random spread added on top of any
            ``Retry-After`` base, as a fraction of it (0.25 → up to
            +25%).  Coalesced clients that all saw the same 503/429
            would otherwise retry in lockstep and re-stampede the key
            the moment the breaker half-opens; 0.0 disables.
        breaker_threshold: Consecutive compute failures that trip a
            key's circuit.
        breaker_cooldown: Seconds a tripped circuit stays open.
        drain_timeout: Seconds graceful drain waits — once for in-flight
            requests, then again for background jobs to checkpoint.
        executor_workers: Concurrent compute jobs (thread-pool size).
        access_log: JSONL access-log path (one structured row per
            request, written through the atomic ``append_jsonl`` path);
            None disables it.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    cache_dir: str | None = None
    max_inflight: int = 64
    deadline: float = 30.0
    retry_after: float = 2.0
    retry_jitter: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    drain_timeout: float = 10.0
    executor_workers: int = 2
    access_log: str | None = None


def compute_corpus_stats(config, *, cache: ArtifactCache) -> list[dict]:
    """Generate (or load) a corpus and cache its analytics summary.

    The stats row is a pure function of the generator config, so it is
    cached under ``(corpus-stats, asdict(config))`` — and the heavy
    part, the corpus itself, goes through the shared corpus cache
    layers, so a stats miss after a warm suite run is still cheap.
    """
    from collections import Counter

    from repro.experiments._corpus import shared_corpus_from_config

    corpus, truth = shared_corpus_from_config(config)
    papers = corpus.papers()
    by_year = Counter(p.year for p in papers)
    by_topic = Counter(p.topic for p in papers)
    by_sector = Counter(a.sector for a in corpus.authors())
    stats = {
        "config": asdict(config),
        "papers": len(papers),
        "authors": len(corpus.authors()),
        "venues": len(corpus.venues()),
        "papers_by_year": {str(y): n for y, n in sorted(by_year.items())},
        "papers_by_topic": dict(sorted(by_topic.items())),
        "authors_by_sector": dict(sorted(by_sector.items())),
        "positionality_papers": len(truth.positionality),
        "human_method_papers": len(truth.human_methods),
    }
    rows = [stats]
    cache.put(CORPUS_STATS_KIND, asdict(config), rows)
    return rows


class ResultService:
    """Routing, admission control, and read-through logic — no sockets.

    Separated from :class:`ResultServer` (which owns the listener) so
    tests can drive :meth:`respond` with synthetic :class:`Request`
    objects and assert on status codes and counters without a single
    TCP connection.

    Args:
        config: The :class:`ServeConfig` tunables.
        metrics: Counter sink; a fresh :class:`MetricsRegistry` by
            default so ``/metrics`` always has something to report.
        tracer: Span sink (ambient tracer by default).
        fault_injector: Passed through to every compute job's runner —
            the chaos tests arm worker-kill faults here.
        runner_kwargs: Extra :class:`SuiteRunner` keywords for compute
            jobs (retries, crash budgets, heartbeats).
    """

    def __init__(
        self,
        config: ServeConfig,
        *,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        fault_injector=None,
        runner_kwargs: dict | None = None,
    ) -> None:
        if config.cache_dir is None:
            raise ValueError("ServeConfig.cache_dir is required to serve")
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else current_tracer()
        self.cache = ArtifactCache(config.cache_dir)
        self.jobs = ComputeJobManager(
            executor_workers=config.executor_workers,
            breaker=CircuitBreaker(
                threshold=config.breaker_threshold,
                cooldown=config.breaker_cooldown,
            ),
            metrics=self.metrics,
        )
        self.fault_injector = fault_injector
        self.runner_kwargs = dict(runner_kwargs or {})
        self.draining = False
        self._inflight = 0
        self._started = time.monotonic()

    # -- connection plumbing -------------------------------------------

    async def handle_connection(self, reader, writer) -> None:
        """One connection: read a request, respond, close.

        Nothing a client sends can raise past here: malformed heads are
        ``400``, a slow-loris head read is bounded by the request
        deadline, and connection resets during the write are swallowed.
        """
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), self.config.deadline
                )
            except BadRequest as exc:
                self.metrics.count("serve.bad_requests")
                await self._write(
                    writer, json_response(400, {"error": str(exc)}), head_only=False
                )
                return
            except asyncio.TimeoutError:
                # Head never arrived inside the deadline; just hang up.
                self.metrics.count("serve.bad_requests")
                return
            if request is None:
                return
            response = await self.respond(request)
            await self._write(
                writer, response, head_only=request.method == "HEAD"
            )
        except (ConnectionError, BrokenPipeError):
            self.metrics.count("serve.client_aborts")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _write(self, writer, response: Response, *, head_only: bool) -> None:
        writer.write(response.encode(head_only=head_only))
        await writer.drain()

    # -- admission + dispatch ------------------------------------------

    async def respond(self, request: Request) -> Response:
        """Admission control, deadline enforcement, routing, accounting.

        Every request — shed, drained, and probe requests included —
        gets the full telemetry treatment here: an ``X-Request-Id``
        (the client's, when sane, so ids survive proxy hops), a
        ``serve.request`` span carrying route/status/config_hash/cache
        source, per-route × per-status latency histograms, status-class
        counters, and one JSONL access-log row.
        """
        self.metrics.count("serve.requests")
        started = time.monotonic()
        request_id = _request_id(request)
        route = route_template(request.path)
        with self.tracer.span(
            "serve.request",
            method=request.method,
            path=request.path,
            route=route,
            request_id=request_id,
        ) as span:
            response = await self._admit_and_route(request, span)
            span.set_attribute("status", response.status)
            for attribute, header in (
                ("config_hash", "X-Config-Hash"),
                ("source", "X-Cache"),
            ):
                value = response.headers.get(header)
                if value is not None:
                    span.set_attribute(attribute, value)
        elapsed = time.monotonic() - started
        response.headers.setdefault("X-Request-Id", request_id)
        self._record_request(request, request_id, route, response, elapsed)
        return response

    def _record_request(
        self,
        request: Request,
        request_id: str,
        route: str,
        response: Response,
        elapsed: float,
    ) -> None:
        """Counters, histograms, and the access-log row for one request."""
        status = response.status
        self.metrics.count(f"serve.responses.{status}")
        self.metrics.count(f"serve.responses.{status // 100}xx")
        self.metrics.observe("serve.request_seconds", elapsed)
        if self.metrics.enabled:
            # The labeled key is an f-string build per request; skip it
            # entirely under NullMetrics so the opt-out stays free.
            self.metrics.observe(
                labeled("serve.request_seconds", route=route, status=status),
                elapsed,
            )
        if self.config.access_log is not None:
            append_jsonl(self.config.access_log, [{
                "ts": time.time(),
                "request_id": request_id,
                "method": request.method,
                "path": request.path,
                "route": route,
                "status": status,
                "duration_ms": round(elapsed * 1000, 3),
                "config_hash": response.headers.get("X-Config-Hash"),
                "source": response.headers.get("X-Cache"),
                "bytes": len(response.body),
            }])

    async def _admit_and_route(self, request: Request, span) -> Response:
        if request.method not in ("GET", "HEAD"):
            return json_response(
                405,
                {"error": f"method {request.method} not supported"},
                {"Allow": "GET, HEAD"},
            )
        # Liveness answers regardless of drain or saturation: the probe
        # asking "is the process up" must not be shed by load.
        if request.path == "/healthz":
            return json_response(
                200, {"status": "alive", "uptime": time.monotonic() - self._started}
            )
        if request.path == "/readyz":
            if self.draining:
                return json_response(
                    503,
                    {"status": "draining"},
                    {"Retry-After": _retry_after(self.config.retry_after, self.config.retry_jitter)},
                )
            return json_response(
                200, {"status": "ready", "inflight": self._inflight}
            )
        if self.draining:
            return json_response(
                503,
                {"error": "server is draining"},
                {"Retry-After": _retry_after(self.config.retry_after, self.config.retry_jitter)},
            )
        if self._inflight >= self.config.max_inflight:
            self.metrics.count("serve.shed")
            return json_response(
                429,
                {
                    "error": "server saturated",
                    "inflight": self._inflight,
                    "max_inflight": self.config.max_inflight,
                },
                {"Retry-After": _retry_after(self.config.retry_after, self.config.retry_jitter)},
            )
        self._inflight += 1
        self.metrics.set_gauge("serve.inflight", self._inflight)
        try:
            return await self._route_with_deadline(request, span)
        finally:
            self._inflight -= 1
            self.metrics.set_gauge("serve.inflight", self._inflight)

    async def _route_with_deadline(self, request: Request, span) -> Response:
        try:
            return await asyncio.wait_for(
                self._route(request, span), self.config.deadline
            )
        except asyncio.TimeoutError:
            self.metrics.count("serve.deadline_timeouts")
            span.set_attribute("outcome", "deadline")
            return json_response(
                503,
                {
                    "error": "deadline exceeded; compute continues in background",
                    "deadline": self.config.deadline,
                },
                {"Retry-After": _retry_after(self.config.retry_after, self.config.retry_jitter)},
            )
        except CircuitOpen as exc:
            span.set_attribute("outcome", "breaker_open")
            return json_response(
                503,
                {"error": str(exc), "circuit": "open"},
                {"Retry-After": _retry_after(exc.retry_after, self.config.retry_jitter)},
            )
        except ComputeFailed as exc:
            span.set_attribute("outcome", "compute_failed")
            return json_response(
                503,
                {"error": str(exc), "crash": exc.crash},
                {"Retry-After": _retry_after(self.config.retry_after, self.config.retry_jitter)},
            )
        except BadRequest as exc:
            return json_response(400, {"error": str(exc)})
        except UnknownExperimentError as exc:
            return json_response(404, {"error": str(exc)})
        except SpecError as exc:
            return json_response(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the server must not die
            self.metrics.count("serve.errors")
            span.set_attribute("outcome", "internal_error")
            return json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    # -- routing --------------------------------------------------------

    async def _route(self, request: Request, span) -> Response:
        path = request.path.rstrip("/") or "/"
        if path == "/metrics":
            return self._metrics_response(request)
        if path == "/v1/experiments":
            return self._experiments()
        if path == "/v1/corpus":
            return await self._corpus(request, span)
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1" and parts[1] == "result":
            if len(parts) == 3:
                return await self._result(request, parts[2], span)
            if len(parts) == 4:
                return self._result_by_hash(parts[2], parts[3])
        if len(parts) == 3 and parts[0] == "v1" and parts[1] == "grid":
            return self._grid(request, parts[2])
        return json_response(404, {"error": f"no route for {request.path}"})

    def _metrics_response(self, request: Request) -> Response:
        """The metrics snapshot, content-negotiated.

        ``Accept: text/plain`` (or ``text/*``, or an OpenMetrics type —
        what Prometheus scrapers send) gets the text exposition;
        everything else, including no ``Accept`` at all, keeps the
        historical JSON snapshot.
        """
        self.metrics.set_gauge(
            "serve.uptime_seconds", time.monotonic() - self._started
        )
        accept = request.headers.get("accept", "")
        if any(
            token in accept
            for token in ("text/plain", "text/*", "openmetrics")
        ):
            return Response(
                status=200,
                body=render_prometheus(self.metrics.snapshot()).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        return json_response(200, self.metrics.snapshot())

    def _experiments(self) -> Response:
        from repro.experiments.registry import all_experiments, describe

        listing = []
        for experiment_id in all_experiments():
            title, claim = describe(experiment_id)
            listing.append(
                {"id": experiment_id, "title": title, "claim": claim}
            )
        return json_response(200, {"experiments": listing})

    # -- results --------------------------------------------------------

    def _build_spec(self, experiment_id: str, request: Request):
        from repro.experiments.registry import make_spec, spec_class
        from repro.experiments.spec import parse_set_overrides

        try:
            seed = int(request.param("seed", "0"))
        except ValueError:
            raise BadRequest(f"seed={request.param('seed')!r} is not an integer")
        preset = request.param("preset", "fast")
        overrides = parse_set_overrides(
            spec_class(experiment_id), request.params("set")
        )
        return make_spec(
            experiment_id, preset=preset, seed=seed, overrides=overrides
        )

    def _result_payload(
        self, experiment_id: str, config_hash: str, rows: list[dict], source: str
    ) -> dict:
        row = rows[0] if rows else {}
        return {
            "experiment_id": experiment_id,
            "config_hash": config_hash,
            "source": source,
            "record": row.get("record"),
            "result": row.get("result"),
        }

    def _result_response(
        self,
        request: Request | None,
        experiment_id: str,
        config_hash: str,
        rows: list[dict],
        source: str,
    ) -> Response:
        etag = f'"{config_hash}"'
        if request is not None and request.headers.get("if-none-match") == etag:
            self.metrics.count("serve.not_modified")
            return Response(
                status=304,
                headers={"ETag": etag, "X-Config-Hash": config_hash},
            )
        return json_response(
            200,
            self._result_payload(experiment_id, config_hash, rows, source),
            {
                "ETag": etag,
                "X-Config-Hash": config_hash,
                "X-Cache": source,
            },
        )

    async def _result(
        self, request: Request, experiment_id: str, span
    ) -> Response:
        from repro.experiments.sweep import SWEEP_RESULT_KIND, result_cache_config

        spec = self._build_spec(experiment_id, request)
        config_hash = spec.config_hash()
        rows = self.cache.get(
            SWEEP_RESULT_KIND, result_cache_config(experiment_id, config_hash)
        )
        if rows:
            self.metrics.count("serve.hits")
            return self._result_response(
                request, experiment_id, config_hash, rows, "cache"
            )
        self.metrics.count("serve.misses")
        if self.jobs.pending(config_hash):
            span.set_attribute("coalesced", True)
        job = self.jobs.submit(config_hash, self._experiment_compute(spec))
        # shield(): a deadline cancels *this request's wait*, never the
        # shared job — coalesced peers and the eventual cache write
        # survive, and the outer wait_for turns the timeout into 503.
        rows = await asyncio.shield(job)
        return self._result_response(
            request, experiment_id, config_hash, rows, "computed"
        )

    def _experiment_compute(self, spec) -> Callable[[], list[dict]]:
        def compute() -> list[dict]:
            return compute_experiment_rows(
                spec,
                cache=self.cache,
                cache_dir=self.config.cache_dir,
                workers=self.config.workers,
                metrics=self.metrics,
                fault_injector=self.fault_injector,
                runner_kwargs=self.runner_kwargs,
            )

        return compute

    def _result_by_hash(self, experiment_id: str, config_hash: str) -> Response:
        """Cache-only lookup: a hash names a computation, never starts one."""
        from repro.experiments.sweep import SWEEP_RESULT_KIND, result_cache_config

        rows = self.cache.get(
            SWEEP_RESULT_KIND, result_cache_config(experiment_id, config_hash)
        )
        if not rows:
            self.metrics.count("serve.misses")
            return json_response(
                404,
                {
                    "error": f"no cached result for {experiment_id}/{config_hash}",
                    "hint": "POST-free API: request /v1/result/"
                    f"{experiment_id}?seed=... to compute it",
                },
            )
        self.metrics.count("serve.hits")
        return self._result_response(
            None, experiment_id, config_hash, rows, "cache"
        )

    # -- grids ----------------------------------------------------------

    def _grid(self, request: Request, experiment_id: str) -> Response:
        """Expand a grid and report per-point cache status (no compute)."""
        from repro.experiments.registry import spec_class
        from repro.experiments.sweep import (
            SWEEP_RESULT_KIND,
            expand_grid,
            parse_grid_args,
            result_cache_config,
        )

        base = self._build_spec(experiment_id, request)
        axes = parse_grid_args(spec_class(experiment_id), request.params("grid"))
        specs = expand_grid(base, axes)
        points = []
        cached = 0
        for spec in specs:
            config_hash = spec.config_hash()
            rows = self.cache.get(
                SWEEP_RESULT_KIND,
                result_cache_config(experiment_id, config_hash),
            )
            if rows:
                cached += 1
            points.append({"config_hash": config_hash, "cached": bool(rows)})
        return json_response(
            200,
            {
                "experiment_id": experiment_id,
                "axes": {k: [repr(v) for v in vs] for k, vs in axes.items()},
                "points": points,
                "total": len(points),
                "cached": cached,
            },
        )

    # -- corpus analytics ------------------------------------------------

    async def _corpus(self, request: Request, span) -> Response:
        from repro.experiments._corpus import corpus_config

        try:
            seed = int(request.param("seed", "0"))
        except ValueError:
            raise BadRequest(f"seed={request.param('seed')!r} is not an integer")
        preset = request.param("preset", "fast")
        if preset not in ("fast", "full"):
            raise BadRequest(f"preset={preset!r} must be 'fast' or 'full'")
        config = corpus_config(seed=seed, fast=preset == "fast")
        for name in ("start_year", "end_year", "authors_per_venue_pool"):
            raw = request.param(name)
            if raw is not None:
                try:
                    config = replace(config, **{name: int(raw)})
                except ValueError:
                    raise BadRequest(f"{name}={raw!r} is not an integer")
        config_dict = asdict(config)
        config_hash = artifact_key(
            CORPUS_STATS_KIND, config_dict, self.cache.version
        )
        etag = f'"{config_hash}"'
        rows = self.cache.get(CORPUS_STATS_KIND, config_dict)
        if rows:
            self.metrics.count("serve.hits")
            source = "cache"
        else:
            self.metrics.count("serve.misses")
            if self.jobs.pending(config_hash):
                span.set_attribute("coalesced", True)
            job = self.jobs.submit(
                config_hash,
                lambda: compute_corpus_stats(config, cache=self.cache),
            )
            rows = await asyncio.shield(job)
            source = "computed"
        if request.headers.get("if-none-match") == etag:
            self.metrics.count("serve.not_modified")
            return Response(
                status=304,
                headers={"ETag": etag, "X-Config-Hash": config_hash},
            )
        return json_response(
            200,
            {"config_hash": config_hash, "source": source, "stats": rows[0]},
            {"ETag": etag, "X-Config-Hash": config_hash, "X-Cache": source},
        )

    # -- drain -----------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting, let in-flight requests and jobs finish."""
        self.draining = True
        self.metrics.count("serve.drains")
        deadline = time.monotonic() + self.config.drain_timeout
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        remaining = max(0.1, deadline - time.monotonic())
        abandoned = await self.jobs.drain(remaining)
        self.metrics.set_gauge("serve.inflight", self._inflight)
        if abandoned:
            self.metrics.count("serve.drain_abandoned", abandoned)


def _retry_after(seconds: float, jitter: float = 0.0) -> str:
    """``Retry-After`` as an integral number of seconds, at least 1.

    ``jitter`` spreads the value uniformly over the integral band
    ``[ceil(seconds), ceil(seconds * (1 + jitter))]``, so a burst of
    clients shed with the same response de-synchronizes instead of
    retrying in lockstep (thundering herd after a breaker opens).  The
    draw is over whole seconds — the only granularity the header can
    express — and the band keeps the hint honest: never earlier than
    the base, never beyond the stated fraction past it.
    """
    low = max(1, math.ceil(seconds))
    if jitter <= 0.0:
        return str(low)
    high = max(low, math.ceil(seconds * (1.0 + jitter)))
    return str(random.randint(low, high))


class ResultServer:
    """The asyncio listener around a :class:`ResultService`."""

    def __init__(self, service: ResultService) -> None:
        self.service = service
        self._server = None
        self.port: int | None = None

    async def start(self) -> None:
        config = self.service.config
        self._server = await asyncio.start_server(
            self.service.handle_connection, config.host, config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: close the listener, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.drain()


async def _serve_until_signalled(service: ResultService) -> None:
    server = ResultServer(service)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    print(
        f"repro serve listening on "
        f"http://{service.config.host}:{server.port} "
        f"(cache: {service.config.cache_dir})",
        file=sys.stderr,
        flush=True,
    )
    await stop.wait()
    print("repro serve: draining ...", file=sys.stderr, flush=True)
    await server.drain()
    print("repro serve: drained, bye", file=sys.stderr, flush=True)


def run_server(service: ResultService) -> int:
    """Run ``service`` until SIGINT/SIGTERM; returns a process exit code."""
    asyncio.run(_serve_until_signalled(service))
    return 0


class ServerThread:
    """A :class:`ResultService` on a daemon thread with its own loop.

    The harness tests, the load-generator benchmark, and the smoke
    script all need a live server *inside* the current process (so they
    can reach its metrics registry and fault injector).  Use as a
    context manager::

        with ServerThread(service) as server:
            fetch("127.0.0.1", server.port, "/healthz")

    Exit triggers the same graceful drain SIGTERM would.
    """

    def __init__(self, service: ResultService) -> None:
        self.service = service
        self.port: int | None = None
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = None
        self._startup_error: BaseException | None = None

    def start(self) -> "ServerThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server thread failed to start in 10s")
        if self._startup_error is not None:
            raise RuntimeError("server thread failed to start") from (
                self._startup_error
            )
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = ResultServer(self.service)
        await server.start()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.drain()

    def drain(self, timeout: float = 30.0) -> None:
        """Trigger the graceful drain and wait for the thread to exit."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
