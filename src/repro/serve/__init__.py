"""``repro.serve`` — a fault-tolerant async result service.

A long-lived HTTP view over the artifact cache: cache hits are served
from disk, misses become supervised background compute jobs, and every
failure mode degrades to a status code instead of a dead process.  See
:mod:`repro.serve.service` for the degradation ladder and DESIGN.md
§10 for the architecture.
"""

from repro.serve.jobs import (
    CircuitBreaker,
    CircuitOpen,
    ComputeFailed,
    ComputeJobManager,
)
from repro.serve.service import (
    ResultServer,
    ResultService,
    ServeConfig,
    ServerThread,
    run_server,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "ComputeFailed",
    "ComputeJobManager",
    "ResultServer",
    "ResultService",
    "ServeConfig",
    "ServerThread",
    "run_server",
]
