"""Background compute behind the result service.

A cache miss in :mod:`repro.serve.service` does not run the experiment
on the event loop — it dispatches a *job*: a synchronous compute
callable pushed onto a small thread pool, where it runs a fully
supervised :class:`repro.runtime.runner.SuiteRunner` (worker processes,
crash requeue, quarantine — the whole PR-4 ladder).  This module owns
the three robustness mechanisms around those jobs:

- **Coalescing.**  Jobs are keyed (by ``config_hash``); N concurrent
  requests for the same uncomputed key share one
  :class:`asyncio.Task` and therefore one compute job.  The extra
  N - 1 requests are counted as ``serve.coalesced``.
- **Detachment.**  A request that hits its deadline abandons the job,
  never cancels it: the job keeps running, writes its result to the
  :class:`~repro.io.artifacts.ArtifactCache` on success, and the
  client's *retry* becomes a cache hit.  ``503 + Retry-After`` is a
  promise, not an apology.
- **Circuit breaking.**  A key whose compute keeps failing (crashed
  workers, poison configs) trips a per-key :class:`CircuitBreaker`
  after ``threshold`` consecutive failures; while the breaker is open,
  requests for that key are rejected with :class:`CircuitOpen` — a
  ``503`` *without* dispatching yet another doomed job.  After the
  cooldown one probe request is let through (half-open); its outcome
  closes or re-opens the circuit.

All bookkeeping (the job table, the breaker) is touched only from the
event-loop thread, so none of it needs locks; only the compute
callable itself runs on the pool.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.obs.metrics import NullMetrics

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "ComputeFailed",
    "ComputeJobManager",
    "compute_experiment_rows",
]


class ComputeFailed(ReproError):
    """A background compute job finished without a usable result.

    Raised inside the job (and therefore re-raised to every coalesced
    awaiter) when the supervised runner reports anything but a clean
    ``status="ok"`` record — an experiment error, a deadline, or a
    crashed/quarantined worker.  The process-level evidence rides
    along so the ``503`` body can say *why*.

    Attributes:
        crash: :meth:`repro.errors.WorkerCrashError.crash_info` payload
            when the compute worker died, else None.
        detail: The runner's recorded error string.
    """

    def __init__(
        self,
        message: str,
        *,
        crash: dict | None = None,
        detail: str | None = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.crash = crash
        self.detail = detail


class CircuitOpen(ReproError):
    """The circuit breaker for a key is open; no job was dispatched.

    Attributes:
        retry_after: Seconds until the breaker half-opens — the value
            the service puts in the ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float, **context) -> None:
        super().__init__(message, **context)
        self.retry_after = retry_after


@dataclass
class _BreakerState:
    failures: int = 0
    opened_until: float = 0.0


class CircuitBreaker:
    """Per-key consecutive-failure breaker with a half-open probe.

    Args:
        threshold: Consecutive failures that open a key's circuit.
        cooldown: Seconds the circuit stays open before one probe
            request is allowed through.
        clock: Monotonic clock (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._states: dict[str, _BreakerState] = {}

    def seconds_until_half_open(self, key: str) -> float | None:
        """Remaining open time for ``key``, or None when requests may pass.

        An expired cooldown flips the circuit to half-open: the next
        request is allowed as a probe, but the failure count is left
        one below the threshold so a failing probe re-opens immediately.
        """
        state = self._states.get(key)
        if state is None or not state.opened_until:
            return None
        remaining = state.opened_until - self._clock()
        if remaining > 0:
            return remaining
        state.opened_until = 0.0
        state.failures = self.threshold - 1
        return None

    def record_success(self, key: str) -> None:
        """A compute for ``key`` succeeded; the circuit closes fully."""
        self._states.pop(key, None)

    def record_failure(self, key: str) -> bool:
        """A compute for ``key`` failed; returns True when this trips it."""
        state = self._states.setdefault(key, _BreakerState())
        state.failures += 1
        if state.failures >= self.threshold and not state.opened_until:
            state.opened_until = self._clock() + self.cooldown
            return True
        return False

    def open_keys(self) -> list[str]:
        """Keys whose circuit is currently open (for the metrics view)."""
        now = self._clock()
        return sorted(
            key
            for key, state in self._states.items()
            if state.opened_until > now
        )


class ComputeJobManager:
    """Keyed, coalesced, breaker-guarded background compute.

    Args:
        executor_workers: Threads in the compute pool.  Each thread
            runs one supervised :class:`SuiteRunner` job at a time;
            the runner's own ``workers`` setting controls process-level
            fan-out *inside* a job.
        breaker: The :class:`CircuitBreaker` guarding dispatch.
        metrics: ``serve.*`` counter sink (NullMetrics by default).
    """

    def __init__(
        self,
        *,
        executor_workers: int = 2,
        breaker: CircuitBreaker | None = None,
        metrics=None,
    ) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-serve-compute",
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.metrics = metrics if metrics is not None else NullMetrics()
        self._jobs: dict[str, asyncio.Task] = {}

    def submit(self, key: str, compute: Callable[[], list[dict]]) -> asyncio.Task:
        """The (possibly shared) job computing ``key``.

        Must be called from the event-loop thread.  Raises
        :class:`CircuitOpen` without dispatching when the key's
        breaker is open; otherwise returns the in-flight job for the
        key (coalescing) or starts a fresh one.
        """
        remaining = self.breaker.seconds_until_half_open(key)
        if remaining is not None:
            self.metrics.count("serve.breaker_rejects")
            raise CircuitOpen(
                f"circuit open for {key[:12]}: recent computes kept failing",
                retry_after=remaining,
            )
        existing = self._jobs.get(key)
        if existing is not None:
            self.metrics.count("serve.coalesced")
            return existing
        self.metrics.count("serve.compute_jobs")
        task = asyncio.ensure_future(self._run(key, compute))
        # A job every awaiter abandoned (deadline 503s all around) must
        # not log "exception was never retrieved" noise at teardown.
        task.add_done_callback(
            lambda t: t.exception() if not t.cancelled() else None
        )
        self._jobs[key] = task
        return task

    async def _run(self, key: str, compute: Callable[[], list[dict]]) -> list[dict]:
        loop = asyncio.get_running_loop()
        try:
            rows = await loop.run_in_executor(self._executor, compute)
        except Exception:
            self.metrics.count("serve.compute_failed")
            if self.breaker.record_failure(key):
                self.metrics.count("serve.breaker_trips")
            raise
        else:
            self.breaker.record_success(key)
            self.metrics.count("serve.compute_ok")
            return rows
        finally:
            self._jobs.pop(key, None)

    @property
    def inflight(self) -> int:
        """How many compute jobs are currently running or queued."""
        return len(self._jobs)

    def pending(self, key: str) -> bool:
        """True when a job for ``key`` is already in flight.

        A :meth:`submit` while this holds will coalesce onto that job;
        the service uses this to stamp ``coalesced`` on request spans
        without changing dispatch.
        """
        return key in self._jobs

    async def drain(self, timeout: float) -> int:
        """Let in-flight jobs checkpoint; returns how many were abandoned.

        Waits up to ``timeout`` for running jobs to finish (each
        finished job has already written its result to the artifact
        cache — that write *is* the checkpoint), then shuts the pool
        down without blocking on stragglers.
        """
        pending = [task for task in self._jobs.values() if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout)
        abandoned = sum(1 for task in pending if not task.done())
        self._executor.shutdown(wait=False, cancel_futures=True)
        if abandoned:
            self.metrics.count("serve.jobs_abandoned", abandoned)
        return abandoned


# ---------------------------------------------------------------------------
# The compute callables the service dispatches


def compute_experiment_rows(
    spec,
    *,
    cache,
    cache_dir: str | None,
    workers: int = 1,
    metrics=None,
    fault_injector=None,
    runner_kwargs: dict | None = None,
) -> list[dict]:
    """Run one experiment spec under supervision; cache and return its rows.

    This is the miss path of the service's read-through: the spec runs
    through :meth:`SuiteRunner.run_points` — process workers, crash
    requeue, quarantine — and a clean result is written to the
    artifact cache under the *same* ``(experiment-result, config_hash)``
    key the sweep engine memoizes into, so ``repro sweep`` warms the
    server and the server warms future sweeps.  Anything but a clean
    result raises :class:`ComputeFailed` with the crash evidence
    attached.
    """
    from repro.experiments.sweep import SWEEP_RESULT_KIND, result_cache_config
    from repro.runtime.runner import SuiteRunner

    experiment_id = type(spec).EXPERIMENT_ID
    runner = SuiteRunner(
        workers=workers,
        cache_dir=cache_dir,
        keep_going=True,
        metrics=metrics,
        fault_injector=fault_injector,
        **(runner_kwargs or {}),
    )
    report = runner.run_points([spec])
    record = report.records[0]
    if record.status != "ok" or record.result is None:
        raise ComputeFailed(
            f"compute for {experiment_id} ended {record.status}: {record.error}",
            crash=record.crash,
            detail=record.error,
            experiment_id=experiment_id,
            seed=record.seed,
            stage="run",
        )
    rows = [{"record": record.to_record(), "result": record.result.to_payload()}]
    cache.put(
        SWEEP_RESULT_KIND,
        result_cache_config(experiment_id, spec.config_hash()),
        rows,
    )
    return rows
