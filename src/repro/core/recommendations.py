"""The Section-5 recommendations audit.

The paper makes three concrete recommendations (Section 5):

1. *Include and document your partnerships in the research process* —
   partners exist, their origins are documented, and they were engaged
   in formative work (problem formation) and real-world evaluation.
2. *Detail your informative conversations* — informal conversations are
   recorded, their influence on the work is documented, and quotes or
   open questions are preserved.
3. *Reflect on your own perspectives* — positionality statements exist
   and disclose the relevant facets.

:func:`audit_project` scores a :class:`~repro.core.project.ResearchProject`
on each practice in [0, 1] and explains every lost point, so the audit
is a to-do list rather than a grade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.positionality import disclosure_score
from repro.core.project import ResearchProject
from repro.core.stages import ResearchStage


@dataclass(frozen=True, slots=True)
class PracticeScore:
    """Score for one recommended practice.

    Attributes:
        practice: Practice id ("partnerships", "conversations",
            "positionality").
        score: Value in [0, 1].
        findings: Human-readable explanations of lost points (empty at
            a full score).
    """

    practice: str
    score: float
    findings: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class RecommendationsAudit:
    """The three practice scores plus the overall mean.

    Attributes:
        partnerships / conversations / positionality: Per-practice
            scores.
    """

    partnerships: PracticeScore
    conversations: PracticeScore
    positionality: PracticeScore

    @property
    def overall(self) -> float:
        """Mean of the three practice scores."""
        return (
            self.partnerships.score
            + self.conversations.score
            + self.positionality.score
        ) / 3.0

    def all_findings(self) -> tuple[str, ...]:
        """Every finding across practices, in practice order."""
        return (
            self.partnerships.findings
            + self.conversations.findings
            + self.positionality.findings
        )


def _audit_partnerships(project: ResearchProject) -> PracticeScore:
    findings: list[str] = []
    points = 0.0
    if project.partners:
        points += 0.25
    else:
        findings.append("no partners are registered")
    documented = project.partners_with_documented_origin()
    if project.partners and len(documented) == len(project.partners):
        points += 0.25
    elif project.partners:
        missing = sorted(
            set(project.partners) - {p.partner_id for p in documented}
        )
        findings.append(
            f"partners without documented relationship origin: {missing}"
        )
    else:
        findings.append("no partnership origins to document")

    formation_rung = project.ledger.problem_formation_rung()
    threshold = PARTICIPATION_LADDER_CONSULTED
    if formation_rung >= threshold:
        points += 0.25
    else:
        findings.append(
            "partners were not engaged in problem formation "
            f"(best rung {formation_rung}, need >= {threshold})"
        )
    if project.ledger.events(stage=ResearchStage.EVALUATION):
        points += 0.25
    else:
        findings.append("no partner engagement during evaluation")
    return PracticeScore("partnerships", points, tuple(findings))


#: Minimum ladder rung that counts as formative engagement.
PARTICIPATION_LADDER_CONSULTED = 2


def _audit_conversations(project: ResearchProject) -> PracticeScore:
    findings: list[str] = []
    records = project.conversations
    if not records:
        return PracticeScore(
            "conversations",
            0.0,
            ("no informal conversations are documented",),
        )
    informed = [c for c in records if c.how_it_informed.strip()]
    substantiated = [c for c in records if c.quotes or c.open_questions]
    presence = 1.0 / 3.0
    informed_share = len(informed) / len(records) / 3.0
    substantiated_share = len(substantiated) / len(records) / 3.0
    if len(informed) < len(records):
        findings.append(
            f"{len(records) - len(informed)} conversation(s) lack "
            "'how it informed the research'"
        )
    if len(substantiated) < len(records):
        findings.append(
            f"{len(records) - len(substantiated)} conversation(s) carry "
            "neither quotes nor open questions"
        )
    return PracticeScore(
        "conversations",
        presence + informed_share + substantiated_share,
        tuple(findings),
    )


def _audit_positionality(project: ResearchProject) -> PracticeScore:
    if not project.positionality:
        return PracticeScore(
            "positionality", 0.0, ("no positionality statement",)
        )
    best = max(disclosure_score(s) for s in project.positionality)
    findings: list[str] = []
    # Half credit for having a statement at all; the rest tracks facet
    # coverage of the best statement.
    score = 0.5 + 0.5 * best
    if best < 0.5:
        findings.append(
            "the positionality statement discloses few facets "
            f"(coverage {best:.2f})"
        )
    return PracticeScore("positionality", score, tuple(findings))


def audit_project(project: ResearchProject) -> RecommendationsAudit:
    """Run the full Section-5 audit over ``project``."""
    return RecommendationsAudit(
        partnerships=_audit_partnerships(project),
        conversations=_audit_conversations(project),
        positionality=_audit_positionality(project),
    )
