"""The research-project record binding the toolkit together.

A :class:`ResearchProject` is the unit the Section-5 recommendations
audit runs over: its partners, engagement ledger, documented informal
conversations ("the work before the work"), fieldwork, positionality
statements, and ethics plan.  Everything here is the documentation the
paper says is usually lost "during our publication processes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ethnography import FieldworkPlan
from repro.core.par import EngagementLedger
from repro.core.positionality import PositionalityStatement


@dataclass(frozen=True, slots=True)
class Partner:
    """A research partner.

    Attributes:
        partner_id: Unique id.
        name: Display name.
        kind: "community", "operator", "hyperscaler", "ngo",
            "government", or "other".
        relationship_origin: How the partnership formed — the
            documentation Section 5.1 explicitly requests ("Talk about
            the partnerships you have formed, how they were formed").
    """

    partner_id: str
    name: str
    kind: str = "community"
    relationship_origin: str = ""


@dataclass(frozen=True, slots=True)
class ConversationRecord:
    """One documented informal conversation (Section 5.2).

    Attributes:
        conv_id: Unique id.
        partner_id: Who the conversation was with.
        month: When.
        summary: What was discussed.
        how_it_informed: How it shaped the research — the load-bearing
            field; an empty value means the conversation was logged but
            its influence went undocumented.
        quotes: Direct quotes (already consent-checked and anonymized).
        open_questions: Questions the conversation left open.
    """

    conv_id: str
    partner_id: str
    month: int
    summary: str = ""
    how_it_informed: str = ""
    quotes: tuple[str, ...] = ()
    open_questions: tuple[str, ...] = ()


@dataclass
class ResearchProject:
    """One study's human-methods record.

    Attributes:
        name: Project name.
        description: What the project studies.
        partners: Partners by id.
        ledger: Engagement events (see :mod:`repro.core.par`).
        conversations: Documented informal conversations.
        fieldwork: Optional ethnographic fieldwork plan.
        positionality: Authors' positionality statements.
        methods_used: Free-form method labels ("interviews",
            "participatory design", "bgp-measurement", ...).
        ethics_plan: Plain-data plan evaluated by
            :func:`repro.ethics.irb.default_checklist`.
    """

    name: str
    description: str = ""
    partners: dict[str, Partner] = field(default_factory=dict)
    ledger: EngagementLedger = field(default_factory=EngagementLedger)
    conversations: list[ConversationRecord] = field(default_factory=list)
    fieldwork: FieldworkPlan | None = None
    positionality: list[PositionalityStatement] = field(default_factory=list)
    methods_used: set[str] = field(default_factory=set)
    ethics_plan: dict = field(default_factory=dict)

    def add_partner(self, partner: Partner) -> None:
        """Register a partner; rejects duplicate ids."""
        if partner.partner_id in self.partners:
            raise ValueError(f"duplicate partner: {partner.partner_id!r}")
        self.partners[partner.partner_id] = partner

    def record_conversation(self, record: ConversationRecord) -> None:
        """Log an informal conversation; the partner must be registered."""
        if record.partner_id not in self.partners:
            raise KeyError(f"unknown partner: {record.partner_id!r}")
        self.conversations.append(record)

    def partners_with_documented_origin(self) -> list[Partner]:
        """Partners whose relationship origin is documented, by id."""
        return sorted(
            (p for p in self.partners.values() if p.relationship_origin.strip()),
            key=lambda p: p.partner_id,
        )

    def conversations_with(self, partner_id: str) -> list[ConversationRecord]:
        """Conversations with one partner, in recorded order."""
        return [c for c in self.conversations if c.partner_id == partner_id]
