"""Focus groups: transcripts, turn-taking, participation balance.

Another of Section 6.1's "other human-centered methods".  A focus
group's validity hinges on facilitation: if two voices produce most of
the words, the "group" finding is really a two-person finding.  This
module records turns and computes the balance diagnostics a facilitator
(or a reviewer) checks: speaking shares, a dominance Gini, facilitator
overhead, and silent-participant detection.  Transcripts convert to
:class:`~repro.qualcoding.segments.Document` for coding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bibliometrics.metrics import gini
from repro.qualcoding.segments import Document


@dataclass(frozen=True, slots=True)
class Turn:
    """One speaking turn.

    Attributes:
        speaker_id: Who spoke.
        text: What they said.
        is_facilitator: True for moderator turns.
    """

    speaker_id: str
    text: str
    is_facilitator: bool = False

    @property
    def word_count(self) -> int:
        """Number of words in the turn."""
        return len(self.text.split())


class FocusGroup:
    """A focus-group session transcript with balance diagnostics.

    Example:
        >>> group = FocusGroup("fg-1", participant_ids=["a", "b"])
        >>> group.add_turn(Turn("mod", "What broke last month?",
        ...                     is_facilitator=True))
        >>> group.add_turn(Turn("a", "The tower radio, twice."))
        >>> group.silent_participants()
        ['b']
    """

    def __init__(self, session_id: str, participant_ids: list[str]) -> None:
        if not participant_ids:
            raise ValueError("need at least one participant")
        if len(set(participant_ids)) != len(participant_ids):
            raise ValueError("duplicate participant ids")
        self.session_id = session_id
        self.participant_ids = list(participant_ids)
        self._turns: list[Turn] = []

    def add_turn(self, turn: Turn) -> None:
        """Append a turn; non-facilitator speakers must be participants."""
        if not turn.is_facilitator and turn.speaker_id not in self.participant_ids:
            raise KeyError(f"unknown participant: {turn.speaker_id!r}")
        self._turns.append(turn)

    def turns(self, include_facilitator: bool = True) -> list[Turn]:
        """Turns in session order."""
        if include_facilitator:
            return list(self._turns)
        return [t for t in self._turns if not t.is_facilitator]

    def speaking_shares(self) -> dict[str, float]:
        """Participant -> share of participant words (0.0 when silent)."""
        counts = {pid: 0 for pid in self.participant_ids}
        for turn in self._turns:
            if not turn.is_facilitator:
                counts[turn.speaker_id] += turn.word_count
        total = sum(counts.values())
        if total == 0:
            return {pid: 0.0 for pid in self.participant_ids}
        return {pid: count / total for pid, count in counts.items()}

    def dominance_gini(self) -> float:
        """Gini of participant word counts (0 = perfectly balanced)."""
        counts = {pid: 0 for pid in self.participant_ids}
        for turn in self._turns:
            if not turn.is_facilitator:
                counts[turn.speaker_id] += turn.word_count
        return gini(list(counts.values()))

    def silent_participants(self) -> list[str]:
        """Participants with zero turns, sorted."""
        spoke = {t.speaker_id for t in self._turns if not t.is_facilitator}
        return sorted(set(self.participant_ids) - spoke)

    def facilitator_share(self) -> float:
        """Fraction of all words spoken by the facilitator.

        Conventional guidance puts this well under half: a moderator
        who out-talks the group is running an interview, not a focus
        group.
        """
        facilitator = sum(
            t.word_count for t in self._turns if t.is_facilitator
        )
        total = sum(t.word_count for t in self._turns)
        return facilitator / total if total else 0.0

    def balance_report(self) -> dict:
        """All balance diagnostics in one dict."""
        return {
            "speaking_shares": self.speaking_shares(),
            "dominance_gini": self.dominance_gini(),
            "silent_participants": self.silent_participants(),
            "facilitator_share": self.facilitator_share(),
            "n_turns": len(self._turns),
        }

    def as_document(self) -> Document:
        """The whole session as one coding-ready transcript document."""
        lines = [
            f"{'[facilitator] ' if t.is_facilitator else ''}{t.speaker_id}: {t.text}"
            for t in self._turns
        ]
        return Document(
            doc_id=f"focusgroup-{self.session_id}",
            text="\n".join(lines),
            kind="focus-group",
            metadata={
                "session_id": self.session_id,
                "participants": list(self.participant_ids),
            },
        )
