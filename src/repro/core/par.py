"""Participatory engagement: the ledger and its scoring.

Section 2 identifies what makes a project participatory: (1) engagement
throughout the process including problem formation, (2) solutions
developed for community-identified problems, (3) iterative design with
community feedback.  The :class:`EngagementLedger` records engagement
events as they happen; the scoring methods quantify the three criteria.

Engagement *kinds* follow the IAP2-style participation ladder: being
told about research is not the same as deciding what gets researched.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.stages import STAGE_ORDER, ResearchStage


class EngagementKind(str, Enum):
    """How the partner participated, ordered by transferred power."""

    INFORMED = "informed"          # told what is happening
    CONSULTED = "consulted"        # asked for input
    INVOLVED = "involved"          # worked alongside researchers
    COLLABORATED = "collaborated"  # shared decisions
    LED = "led"                    # partner directed the work


#: Kind -> ladder rung (higher = more power with the partner).
PARTICIPATION_LADDER: dict[EngagementKind, int] = {
    EngagementKind.INFORMED: 1,
    EngagementKind.CONSULTED: 2,
    EngagementKind.INVOLVED: 3,
    EngagementKind.COLLABORATED: 4,
    EngagementKind.LED: 5,
}


@dataclass(frozen=True, slots=True)
class EngagementEvent:
    """One engagement between researchers and a partner.

    Attributes:
        month: Project month the event happened.
        stage: Lifecycle stage the engagement belonged to.
        partner_id: Which partner (see :class:`repro.core.project.Partner`).
        kind: Participation kind (ladder rung).
        description: What happened, for the documentation Section 5.1
            asks for.
        fed_back_into_design: True when this event changed the design —
            the marker iterative-design scoring counts.
    """

    month: int
    stage: ResearchStage
    partner_id: str
    kind: EngagementKind
    description: str = ""
    fed_back_into_design: bool = False

    def __post_init__(self) -> None:
        if self.month < 0:
            raise ValueError(f"month must be >= 0, got {self.month}")


class EngagementLedger:
    """All engagement events of a project, with PAR scoring.

    Example:
        >>> ledger = EngagementLedger()
        >>> ledger.record(EngagementEvent(
        ...     0, ResearchStage.PROBLEM_FORMATION, "coop",
        ...     EngagementKind.LED, "community named the problem"))
        >>> ledger.stage_coverage()
        0.2
    """

    def __init__(self, events: list[EngagementEvent] | None = None) -> None:
        self._events: list[EngagementEvent] = []
        for event in events or []:
            self.record(event)

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: EngagementEvent) -> None:
        """Append an event."""
        self._events.append(event)

    def events(
        self,
        stage: ResearchStage | None = None,
        partner_id: str | None = None,
    ) -> list[EngagementEvent]:
        """Events filtered by stage and/or partner, in recorded order."""
        return [
            e
            for e in self._events
            if (stage is None or e.stage == stage)
            and (partner_id is None or e.partner_id == partner_id)
        ]

    def partners_engaged(self) -> list[str]:
        """Partner ids appearing in the ledger, sorted."""
        return sorted({e.partner_id for e in self._events})

    def stage_coverage(self) -> float:
        """Fraction of lifecycle stages with at least one engagement.

        1.0 is the paper's "full and active participation at all levels".
        """
        covered = {e.stage for e in self._events}
        return len(covered) / len(STAGE_ORDER)

    def problem_formation_rung(self) -> int:
        """Highest ladder rung reached during problem formation (0 = none).

        The paper's sharpest criterion: did the community shape *what*
        was studied, or only how?
        """
        rungs = [
            PARTICIPATION_LADDER[e.kind]
            for e in self.events(stage=ResearchStage.PROBLEM_FORMATION)
        ]
        return max(rungs, default=0)

    def mean_rung(self) -> float:
        """Average ladder rung across all events (0.0 when empty)."""
        if not self._events:
            return 0.0
        return sum(PARTICIPATION_LADDER[e.kind] for e in self._events) / len(
            self._events
        )

    def iteration_count(self) -> int:
        """Number of feedback events that changed the design."""
        return sum(1 for e in self._events if e.fed_back_into_design)

    def participation_score(self) -> float:
        """Composite PAR score in [0, 1].

        Equal-weight blend of the paper's three criteria:

        - stage coverage (engagement at all levels),
        - problem-formation rung (community shaped the question),
          normalized by the top rung,
        - iteration (capped at 3 design-changing feedback events).
        """
        coverage = self.stage_coverage()
        formation = self.problem_formation_rung() / max(
            PARTICIPATION_LADDER.values()
        )
        iteration = min(self.iteration_count(), 3) / 3.0
        return (coverage + formation + iteration) / 3.0
