"""Research lifecycle stages.

AR/PAR "should strive for full and active participation of individuals
or communities at all levels, from scoping initial research questions
through to the publication of research results" (paper, Section 2).
"All levels" needs a level set; this is it.
"""

from __future__ import annotations

from enum import Enum


class ResearchStage(str, Enum):
    """One stage of a research project's lifecycle."""

    PROBLEM_FORMATION = "problem_formation"
    DESIGN = "design"
    IMPLEMENTATION = "implementation"
    EVALUATION = "evaluation"
    PUBLICATION = "publication"


#: Stages in lifecycle order.
STAGE_ORDER: tuple[ResearchStage, ...] = (
    ResearchStage.PROBLEM_FORMATION,
    ResearchStage.DESIGN,
    ResearchStage.IMPLEMENTATION,
    ResearchStage.EVALUATION,
    ResearchStage.PUBLICATION,
)
