"""Positionality statements: model, renderer, extractor, scoring.

Section 4: "Authors use positionality in the introduction or methods
sections to situate or position themselves within the research, often
including their geographic location, socioeconomic status, personal
beliefs, and affiliations with specific communities."  That sentence is
this module's schema: a statement is structured disclosure along those
facets, a disclosure score measures how many relevant facets a
statement covers, and the extractor recovers statements from paper text
(used by experiment E2 over the synthetic corpus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.textmine.sections import find_section, split_sections
from repro.textmine.tokenize import sentences

#: The disclosure facets Section 4 enumerates.
FACETS: tuple[str, ...] = (
    "identity",         # who the authors are (role, expertise, background)
    "location",         # geographic/geopolitical situation
    "beliefs",          # political/social/theoretical commitments
    "affiliations",     # institutional and industry ties
    "community_ties",   # membership in or ties to the studied community
    "relevance",        # why any of this matters to *this* work
)

_FACET_CUES: dict[str, tuple[str, ...]] = {
    "identity": (
        "we are", "the authors are", "as researchers", "we write as",
        "situate themselves as", "we identify",
    ),
    "location": (
        "global north", "global south", "based in", "located in",
        "geograph",
    ),
    "beliefs": (
        "we believe", "we hold", "feminist", "we are committed",
        "our view", "normative", "we value", "skeptic", "proponent",
    ),
    "affiliations": (
        "affiliat", "industry ties", "funded by", "employed",
        "prior industry", "our institution",
    ),
    "community_ties": (
        "member of the community", "ties to", "embedded in",
        "part of the community", "grew up", "we operate",
    ),
    "relevance": (
        "shaped which questions", "informs", "influenced our",
        "this standpoint", "affects our research", "shaped the framing",
        "shaped both the methods",
    ),
}

#: Marker phrases :func:`has_positionality_statement` requires before
#: running the extractor; exported so bulk scanners (the columnar
#: shard scan) can prefilter candidate papers cheaply.
STATEMENT_MARKERS = (
    "positionality",
    "we situate ourselves",
    "situate themselves",
    "our situated knowledge",
    "reflexivity statement",
)


@dataclass(frozen=True, slots=True)
class PositionalityStatement:
    """A structured positionality statement.

    Attributes (each a free-text disclosure; "" = not disclosed):
        identity / location / beliefs / affiliations / community_ties /
        relevance: See :data:`FACETS`.
        source_text: Raw text the statement came from (extractor output)
            or "" when authored directly.
    """

    identity: str = ""
    location: str = ""
    beliefs: str = ""
    affiliations: str = ""
    community_ties: str = ""
    relevance: str = ""
    source_text: str = ""

    def disclosed_facets(self) -> tuple[str, ...]:
        """Facets with non-empty disclosures, in schema order."""
        return tuple(f for f in FACETS if getattr(self, f).strip())

    def render(self) -> str:
        """Render as the prose block a paper would carry.

        >>> PositionalityStatement(identity="network engineers").render()
        'Positionality. We write as network engineers.'
        """
        parts = ["Positionality."]
        if self.identity:
            parts.append(f"We write as {self.identity}.")
        if self.location:
            parts.append(f"We are situated in {self.location}.")
        if self.affiliations:
            parts.append(f"Our affiliations include {self.affiliations}.")
        if self.community_ties:
            parts.append(f"We have ties to {self.community_ties}.")
        if self.beliefs:
            parts.append(f"We hold {self.beliefs}.")
        if self.relevance:
            parts.append(f"This matters here because {self.relevance}.")
        return " ".join(parts)


def disclosure_score(statement: PositionalityStatement) -> float:
    """Fraction of the six facets the statement discloses.

    The paper does not demand every facet in every work ("in as much
    detail as is relevant"); the score is a coverage measure, not a
    pass/fail bar.
    """
    return len(statement.disclosed_facets()) / len(FACETS)


def _facets_in_text(text: str) -> dict[str, str]:
    """Map facet -> first sentence in ``text`` showing that facet's cue."""
    found: dict[str, str] = {}
    for sentence in sentences(text):
        lowered = sentence.lower()
        for facet, cues in _FACET_CUES.items():
            if facet not in found and any(cue in lowered for cue in cues):
                found[facet] = sentence.strip()
    return found


def extract_statements(paper_text: str) -> list[PositionalityStatement]:
    """Recover positionality statements from a paper's plain text.

    Strategy: first look for an explicit "Positionality" section; then
    scan the remaining text for statement-marker sentences and take a
    window around each.  Each hit is parsed into facets via cue phrases.

    Returns:
        Statements in document order (usually zero or one per paper).
    """
    statements: list[PositionalityStatement] = []
    claimed_spans: list[str] = []

    section = find_section(split_sections(paper_text), "positionality")
    if section is not None and section.body.strip():
        claimed_spans.append(section.body)

    remaining = paper_text
    for span in claimed_spans:
        remaining = remaining.replace(span, "")
    for sentence in sentences(remaining):
        lowered = sentence.lower()
        if any(marker in lowered for marker in STATEMENT_MARKERS):
            start = remaining.find(sentence)
            window = remaining[start : start + 500]
            claimed_spans.append(window)
            break  # one inline statement per paper is the realistic case

    for index, span in enumerate(claimed_spans):
        facets = _facets_in_text(span)
        # An explicit section counts even when facet parsing comes up
        # empty (the header is the author's own label); an inline marker
        # hit must parse at least one facet, or it is just the *word*
        # "positionality" appearing in prose.
        is_section_span = section is not None and index == 0
        if not facets and not is_section_span:
            continue
        statements.append(
            PositionalityStatement(
                identity=facets.get("identity", ""),
                location=facets.get("location", ""),
                beliefs=facets.get("beliefs", ""),
                affiliations=facets.get("affiliations", ""),
                community_ties=facets.get("community_ties", ""),
                relevance=facets.get("relevance", ""),
                source_text=span.strip(),
            )
        )
    return statements


def has_positionality_statement(paper_text: str) -> bool:
    """True when the text carries a recognizable positionality statement.

    Requires a marker *and* at least one parsed facet, so a paper that
    merely cites positionality literature does not count.
    """
    lowered = paper_text.lower()
    if not any(marker in lowered for marker in STATEMENT_MARKERS):
        return False
    return any(s.disclosed_facets() for s in extract_statements(paper_text))
