"""The paper's primary contribution, operationalized.

The paper argues (Sections 2-5) that three practices — participatory
action research, ethnographic methods, and positionality — should be
formalized parts of networking research: "making them visible and
reproducible to our research community."  This package is that
formalization:

- :mod:`repro.core.stages` -- the research lifecycle stages engagement
  is measured against.
- :mod:`repro.core.par` -- the engagement ledger and participation
  scoring (who was in the room, at which stage, with how much power).
- :mod:`repro.core.ethnography` -- fieldwork plans, field notes,
  patchwork scheduling, and depth metrics.
- :mod:`repro.core.positionality` -- structured positionality
  statements: model, renderer, extractor, disclosure scoring.
- :mod:`repro.core.recommendations` -- the Section-5 audit engine that
  scores a project against the paper's three recommendations.
- :mod:`repro.core.project` -- :class:`ResearchProject`, the record
  type binding all of the above (plus ethics) for one study.
- :mod:`repro.core.diary` / :mod:`repro.core.focusgroup` -- the "other
  human-centered methods" of Section 6.1: diary studies triangulated
  against technology probes, and focus groups with participation-
  balance diagnostics.
"""

from repro.core.stages import ResearchStage, STAGE_ORDER
from repro.core.par import (
    EngagementKind,
    PARTICIPATION_LADDER,
    EngagementEvent,
    EngagementLedger,
)
from repro.core.ethnography import (
    FieldSite,
    FieldNote,
    FieldworkPlan,
    patchwork_schedule,
    fieldwork_depth,
)
from repro.core.positionality import (
    PositionalityStatement,
    disclosure_score,
    extract_statements,
    has_positionality_statement,
    FACETS,
)
from repro.core.recommendations import (
    PracticeScore,
    RecommendationsAudit,
    audit_project,
)
from repro.core.project import Partner, ConversationRecord, ResearchProject
from repro.core.diary import (
    DiaryEntry,
    DiaryStudy,
    ProbeLog,
    simulate_diary_study,
    triangulate,
)
from repro.core.focusgroup import FocusGroup, Turn
from repro.core.casestudy import CaseStudy, Claim, EvidenceRef, EVIDENCE_KINDS

__all__ = [
    "ResearchStage",
    "STAGE_ORDER",
    "EngagementKind",
    "PARTICIPATION_LADDER",
    "EngagementEvent",
    "EngagementLedger",
    "FieldSite",
    "FieldNote",
    "FieldworkPlan",
    "patchwork_schedule",
    "fieldwork_depth",
    "PositionalityStatement",
    "disclosure_score",
    "extract_statements",
    "has_positionality_statement",
    "FACETS",
    "PracticeScore",
    "RecommendationsAudit",
    "audit_project",
    "Partner",
    "ConversationRecord",
    "ResearchProject",
    "DiaryEntry",
    "DiaryStudy",
    "ProbeLog",
    "simulate_diary_study",
    "triangulate",
    "FocusGroup",
    "Turn",
    "CaseStudy",
    "Claim",
    "EvidenceRef",
    "EVIDENCE_KINDS",
]
