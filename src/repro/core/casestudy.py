"""Case studies: claims, evidence chains, triangulation.

The last of Section 6.1's "other human-centered methods".  A case
study's rigor lives in its evidence chain: every analytic claim should
trace to sources, and the strong claims should *triangulate* — be
supported by more than one kind of evidence (an interview AND a
measurement, a field note AND a document), because each source kind
fails differently.  This module makes the chain explicit and checkable:

- :class:`EvidenceRef` links a claim to a source (a field note id, an
  interview document, a measurement artifact, ...).
- :class:`CaseStudy` holds claims and their evidence.
- :meth:`CaseStudy.triangulation_report` is the audit: unsupported
  claims, single-source claims, and the triangulated share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

EVIDENCE_KINDS = (
    "interview",
    "fieldnote",
    "measurement",
    "document",
    "survey",
    "observation",
)


@dataclass(frozen=True, slots=True)
class EvidenceRef:
    """A pointer from a claim to a source.

    Attributes:
        kind: Source kind (one of :data:`EVIDENCE_KINDS`).
        ref_id: Identifier of the source in whatever store holds it
            (a document id, a JSONL record id, a trace filename).
        note: How this source supports the claim.
    """

    kind: str
    ref_id: str
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVIDENCE_KINDS:
            raise ValueError(
                f"unknown evidence kind {self.kind!r}; "
                f"expected one of {EVIDENCE_KINDS}"
            )
        if not self.ref_id:
            raise ValueError("ref_id must be non-empty")


@dataclass
class Claim:
    """One analytic claim of the case study.

    Attributes:
        claim_id: Unique id.
        text: The claim.
        evidence: Supporting sources.
        central: True for the claims the study's conclusions rest on —
            these are held to the triangulation bar.
    """

    claim_id: str
    text: str
    evidence: list[EvidenceRef] = field(default_factory=list)
    central: bool = False

    def source_kinds(self) -> set[str]:
        """Distinct evidence kinds supporting this claim."""
        return {e.kind for e in self.evidence}

    @property
    def triangulated(self) -> bool:
        """True when at least two *kinds* of evidence support the claim."""
        return len(self.source_kinds()) >= 2


class CaseStudy:
    """A case study's claims and their evidence chains.

    Example:
        >>> study = CaseStudy("ixp-study")
        >>> study.add_claim(Claim("c1", "The incumbent evades the mandate",
        ...                       central=True))
        >>> study.attach_evidence("c1", EvidenceRef("interview", "i-07"))
        >>> study.attach_evidence("c1", EvidenceRef("measurement", "bgp-dump-3"))
        >>> study.claim("c1").triangulated
        True
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._claims: dict[str, Claim] = {}

    def __len__(self) -> int:
        return len(self._claims)

    def add_claim(self, claim: Claim) -> None:
        """Register a claim; rejects duplicate ids."""
        if claim.claim_id in self._claims:
            raise ValueError(f"duplicate claim id: {claim.claim_id!r}")
        self._claims[claim.claim_id] = claim

    def claim(self, claim_id: str) -> Claim:
        """Claim by id (KeyError when absent)."""
        return self._claims[claim_id]

    def claims(self, central_only: bool = False) -> list[Claim]:
        """All claims, sorted by id."""
        return sorted(
            (c for c in self._claims.values() if not central_only or c.central),
            key=lambda c: c.claim_id,
        )

    def attach_evidence(self, claim_id: str, evidence: EvidenceRef) -> None:
        """Attach a source to a claim."""
        self._claims[claim_id].evidence.append(evidence)

    def triangulation_report(self) -> dict:
        """The evidence audit.

        Returns:
            Dict with:

            - ``unsupported``: claim ids with no evidence at all.
            - ``single_source``: claim ids with evidence of only one kind.
            - ``central_untriangulated``: central claims failing the
              two-kind bar (the findings a reviewer challenges first).
            - ``triangulated_share``: fraction of all claims that
              triangulate (1.0 for an empty study).
            - ``kind_usage``: evidence kind -> number of claims using it.
        """
        unsupported = []
        single_source = []
        central_untriangulated = []
        kind_usage: dict[str, int] = {}
        triangulated = 0
        for claim in self.claims():
            kinds = claim.source_kinds()
            for kind in kinds:
                kind_usage[kind] = kind_usage.get(kind, 0) + 1
            if not claim.evidence:
                unsupported.append(claim.claim_id)
            elif len(kinds) == 1:
                single_source.append(claim.claim_id)
            if claim.triangulated:
                triangulated += 1
            elif claim.central:
                central_untriangulated.append(claim.claim_id)
        total = len(self._claims)
        return {
            "unsupported": unsupported,
            "single_source": single_source,
            "central_untriangulated": central_untriangulated,
            "triangulated_share": triangulated / total if total else 1.0,
            "kind_usage": dict(sorted(kind_usage.items())),
        }
