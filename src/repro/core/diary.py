"""Diary studies and technology probes.

Section 6.1 of the paper points past its three headline methods to
"diaries, case studies, and focus groups", and specifically to blending
them "with quantitative approaches, such as in the case of analyzing
user diaries and technology probes to recreate and understand user
interactions" (Chidziwisano [7]).  This module implements that blend:

- :class:`DiaryStudy` collects per-participant, per-day entries and
  computes the compliance and fatigue statistics diary methods live and
  die by (entry rates decay; late-study entries get shorter).
- :class:`ProbeLog` holds the technology probe's passive event log.
- :func:`triangulate` compares what participants *say* they did
  (diary) with what the probe *saw* them do, quantifying recall bias —
  the reason the combination beats either instrument alone.
- :func:`simulate_diary_study` generates a study with controllable
  ground truth (true usage days, compliance decay, recall error) so the
  analysis pipeline can be validated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.qualcoding.segments import Document


@dataclass(frozen=True, slots=True)
class DiaryEntry:
    """One diary entry.

    Attributes:
        participant_id: Who wrote it.
        day: Study day (0-based).
        text: The entry text.
        reported_usage: Whether the participant reports having used the
            technology that day (the claim triangulation checks).
        prompted: True when the entry answered a scheduled prompt,
            False for a spontaneous entry.
    """

    participant_id: str
    day: int
    text: str
    reported_usage: bool = False
    prompted: bool = True

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")

    def as_document(self) -> Document:
        """Convert to a coding-ready document."""
        return Document(
            doc_id=f"diary-{self.participant_id}-d{self.day:03d}",
            text=self.text,
            kind="diary",
            metadata={
                "participant_id": self.participant_id,
                "day": self.day,
                "reported_usage": self.reported_usage,
                "prompted": self.prompted,
            },
        )


class DiaryStudy:
    """A diary study: participants, duration, entries, compliance.

    Example:
        >>> study = DiaryStudy("connectivity-diary", duration_days=7,
        ...                    participant_ids=["p1"])
        >>> study.record(DiaryEntry("p1", 0, "used the mesh all morning",
        ...                          reported_usage=True))
        >>> study.compliance_rate("p1")
        0.14285714285714285
    """

    def __init__(
        self,
        name: str,
        duration_days: int,
        participant_ids: list[str],
    ) -> None:
        if duration_days < 1:
            raise ValueError("duration_days must be >= 1")
        if not participant_ids:
            raise ValueError("need at least one participant")
        if len(set(participant_ids)) != len(participant_ids):
            raise ValueError("duplicate participant ids")
        self.name = name
        self.duration_days = duration_days
        self.participant_ids = list(participant_ids)
        self._entries: list[DiaryEntry] = []

    def record(self, entry: DiaryEntry) -> None:
        """Add an entry; validates participant and day range."""
        if entry.participant_id not in self.participant_ids:
            raise KeyError(f"unknown participant: {entry.participant_id!r}")
        if entry.day >= self.duration_days:
            raise ValueError(
                f"day {entry.day} outside the {self.duration_days}-day study"
            )
        self._entries.append(entry)

    def entries(
        self,
        participant_id: str | None = None,
        day: int | None = None,
    ) -> list[DiaryEntry]:
        """Entries filtered by participant and/or day, in (day, id) order."""
        result = [
            e
            for e in self._entries
            if (participant_id is None or e.participant_id == participant_id)
            and (day is None or e.day == day)
        ]
        return sorted(result, key=lambda e: (e.day, e.participant_id))

    def compliance_rate(self, participant_id: str) -> float:
        """Fraction of study days the participant wrote at least one entry."""
        if participant_id not in self.participant_ids:
            raise KeyError(f"unknown participant: {participant_id!r}")
        days_with_entry = {
            e.day for e in self._entries if e.participant_id == participant_id
        }
        return len(days_with_entry) / self.duration_days

    def fatigue_curve(self) -> list[float]:
        """Per-day entry rate across all participants.

        ``curve[d]`` is the fraction of participants who wrote on day
        ``d``.  A healthy study is flat; the conventional diary-fatigue
        signature slopes down.
        """
        per_day: dict[int, set[str]] = {}
        for entry in self._entries:
            per_day.setdefault(entry.day, set()).add(entry.participant_id)
        n = len(self.participant_ids)
        return [
            len(per_day.get(day, set())) / n for day in range(self.duration_days)
        ]

    def fatigue_slope(self) -> float:
        """Least-squares slope of the fatigue curve (per day).

        Negative values mean decaying participation; 0 means none.
        """
        curve = self.fatigue_curve()
        n = len(curve)
        if n < 2:
            return 0.0
        mean_x = (n - 1) / 2.0
        mean_y = sum(curve) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in enumerate(curve))
        den = sum((x - mean_x) ** 2 for x in range(n))
        return num / den if den else 0.0

    def mean_entry_length(self, half: str = "all") -> float:
        """Mean entry length in words ("first"/"second" half, or "all")."""
        if half not in ("all", "first", "second"):
            raise ValueError(f"half must be all/first/second, got {half!r}")
        midpoint = self.duration_days / 2
        selected = [
            e
            for e in self._entries
            if half == "all"
            or (half == "first" and e.day < midpoint)
            or (half == "second" and e.day >= midpoint)
        ]
        if not selected:
            return 0.0
        return sum(len(e.text.split()) for e in selected) / len(selected)

    def documents(self) -> list[Document]:
        """All entries as coding-ready documents."""
        return [e.as_document() for e in self.entries()]


@dataclass
class ProbeLog:
    """A technology probe's passive usage log.

    Attributes:
        events: ``(participant_id, day)`` pairs, one per observed usage
            event (duplicates allowed; days are what triangulation uses).
    """

    events: list[tuple[str, int]] = field(default_factory=list)

    def log(self, participant_id: str, day: int) -> None:
        """Record one observed usage event."""
        if day < 0:
            raise ValueError(f"day must be >= 0, got {day}")
        self.events.append((participant_id, day))

    def usage_days(self, participant_id: str) -> set[int]:
        """Days the probe observed the participant using the technology."""
        return {day for pid, day in self.events if pid == participant_id}


def triangulate(study: DiaryStudy, probe: ProbeLog) -> dict:
    """Compare diary self-reports against probe observations.

    For each participant, diary days with ``reported_usage=True`` are
    compared to the probe's observed usage days over the study window.

    Returns:
        Dict with:

        - ``per_participant``: participant -> dict of ``reported_days``,
          ``observed_days``, ``underreported`` (observed but not
          reported — forgotten usage), ``overreported`` (reported but
          not observed), and ``recall`` (|reported ∩ observed| /
          |observed|; 1.0 when the probe saw nothing).
        - ``mean_recall``: average recall across participants with any
          observed usage.
        - ``underreporting_rate``: pooled fraction of observed usage
          days that never made it into a diary — the quantitative gap
          the probe exists to close.
    """
    per_participant = {}
    recalls = []
    pooled_observed = 0
    pooled_missed = 0
    for participant_id in study.participant_ids:
        reported = {
            e.day
            for e in study.entries(participant_id=participant_id)
            if e.reported_usage
        }
        observed = {
            day
            for day in probe.usage_days(participant_id)
            if day < study.duration_days
        }
        missed = observed - reported
        recall = (
            len(observed & reported) / len(observed) if observed else 1.0
        )
        if observed:
            recalls.append(recall)
            pooled_observed += len(observed)
            pooled_missed += len(missed)
        per_participant[participant_id] = {
            "reported_days": len(reported),
            "observed_days": len(observed),
            "underreported": len(missed),
            "overreported": len(reported - observed),
            "recall": recall,
        }
    return {
        "per_participant": per_participant,
        "mean_recall": sum(recalls) / len(recalls) if recalls else 1.0,
        "underreporting_rate": (
            pooled_missed / pooled_observed if pooled_observed else 0.0
        ),
    }


_ENTRY_TEXTS = (
    "Used the network to call family in the evening.",
    "Connection dropped during the storm; gave up after two tries.",
    "Streamed a lesson for the kids; it mostly held up.",
    "Did not touch the network today; market day.",
    "Uploaded the cooperative's records; slow but it finished.",
)


def simulate_diary_study(
    n_participants: int = 12,
    duration_days: int = 28,
    usage_probability: float = 0.6,
    initial_compliance: float = 0.9,
    compliance_decay_per_day: float = 0.01,
    recall_error: float = 0.2,
    seed: int = 0,
) -> tuple[DiaryStudy, ProbeLog]:
    """Generate a diary study plus its probe ground truth.

    Each participant truly uses the technology on each day with
    ``usage_probability`` (the probe sees every true usage).  They write
    a diary entry with probability ``initial_compliance`` decaying
    linearly by ``compliance_decay_per_day``; when they do write after a
    usage day, they *fail to report* the usage with ``recall_error``.

    Returns:
        ``(study, probe)`` — analysis of which should recover the
        planted fatigue slope (negative) and underreporting rate
        (close to ``recall_error``).
    """
    if not 0.0 <= recall_error <= 1.0:
        raise ValueError("recall_error must be in [0, 1]")
    rng = random.Random(seed)
    participant_ids = [f"p{i:02d}" for i in range(n_participants)]
    study = DiaryStudy("simulated-diary", duration_days, participant_ids)
    probe = ProbeLog()
    for participant_id in participant_ids:
        for day in range(duration_days):
            used = rng.random() < usage_probability
            if used:
                probe.log(participant_id, day)
            compliance = max(
                0.0, initial_compliance - compliance_decay_per_day * day
            )
            if rng.random() < compliance:
                reports_usage = used and rng.random() >= recall_error
                length_factor = max(1, round(3 * compliance))
                text = " ".join(
                    rng.choice(_ENTRY_TEXTS) for _ in range(length_factor)
                )
                study.record(
                    DiaryEntry(
                        participant_id,
                        day,
                        text,
                        reported_usage=reports_usage,
                    )
                )
    return study, probe
