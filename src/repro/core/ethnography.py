"""Ethnographic fieldwork: plans, notes, patchwork schedules, depth.

Section 3 of the paper contrasts traditional long-immersion ethnography
with *patchwork ethnography* (Günel, Varma & Watanabe) — sustained depth
through shorter, repeated engagements — and industry "rapid
ethnography".  This module models fieldwork as scheduled visits to
sites, accumulates field notes (which flow into
:mod:`repro.qualcoding` as documents), and computes the depth metrics
the saturation experiment (E5) compares schedules on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qualcoding.segments import Document


@dataclass(frozen=True, slots=True)
class FieldSite:
    """A fieldwork site.

    Attributes:
        site_id: Unique id ("scn-tower-site", "ixp-frankfurt").
        description: What the site is.
        access_notes: How access was negotiated — the "work before the
            work" the paper asks researchers to document.
    """

    site_id: str
    description: str = ""
    access_notes: str = ""


@dataclass(frozen=True, slots=True)
class FieldNote:
    """One field note.

    Attributes:
        note_id: Unique id.
        site_id: Where it was written.
        day: Absolute fieldwork day index.
        text: The note.
        reflexive: True for reflexivity memos (the researcher examining
            their own position) rather than observations.
    """

    note_id: str
    site_id: str
    day: int
    text: str
    reflexive: bool = False

    def as_document(self) -> Document:
        """Convert to a :class:`~repro.qualcoding.segments.Document`."""
        return Document(
            doc_id=self.note_id,
            text=self.text,
            kind="fieldnote",
            metadata={
                "site_id": self.site_id,
                "day": self.day,
                "reflexive": self.reflexive,
            },
        )


@dataclass
class FieldworkPlan:
    """A fieldwork engagement: sites, visit schedule, notes.

    Attributes:
        name: Study name.
        sites: Sites by id.
        visits: ``(site_id, start_day, end_day)`` visit windows
            (end inclusive).
        notes: Accumulated field notes.
    """

    name: str
    sites: dict[str, FieldSite] = field(default_factory=dict)
    visits: list[tuple[str, int, int]] = field(default_factory=list)
    notes: list[FieldNote] = field(default_factory=list)

    def add_site(self, site: FieldSite) -> None:
        """Register a site; rejects duplicates."""
        if site.site_id in self.sites:
            raise ValueError(f"duplicate site: {site.site_id!r}")
        self.sites[site.site_id] = site

    def schedule_visit(self, site_id: str, start_day: int, end_day: int) -> None:
        """Add a visit window (days inclusive)."""
        if site_id not in self.sites:
            raise KeyError(f"unknown site: {site_id!r}")
        if end_day < start_day or start_day < 0:
            raise ValueError(f"bad visit window: [{start_day}, {end_day}]")
        self.visits.append((site_id, start_day, end_day))

    def record_note(self, note: FieldNote) -> None:
        """Add a field note; its day must fall inside a visit to its site."""
        if note.site_id not in self.sites:
            raise KeyError(f"unknown site: {note.site_id!r}")
        if not any(
            site == note.site_id and start <= note.day <= end
            for site, start, end in self.visits
        ):
            raise ValueError(
                f"note day {note.day} is outside every visit to {note.site_id!r}"
            )
        self.notes.append(note)

    def field_days(self) -> int:
        """Total distinct person-days in the field."""
        days: set[tuple[str, int]] = set()
        for site, start, end in self.visits:
            for day in range(start, end + 1):
                days.add((site, day))
        return len(days)

    def documents(self) -> list[Document]:
        """All notes as coding-ready documents, by note id."""
        return sorted(
            (note.as_document() for note in self.notes),
            key=lambda d: d.doc_id,
        )


def patchwork_schedule(
    site_ids: list[str],
    total_field_days: int,
    n_bursts: int,
    gap_days: int = 30,
) -> list[tuple[str, int, int]]:
    """Split a fieldwork budget into patchwork bursts.

    Distributes ``total_field_days`` across ``n_bursts`` visit windows
    separated by ``gap_days``, cycling through ``site_ids``.  The same
    budget in one continuous block is the traditional-immersion
    comparator.

    Returns:
        ``(site_id, start_day, end_day)`` windows.

    >>> patchwork_schedule(["a"], 10, 2, gap_days=5)
    [('a', 0, 4), ('a', 10, 14)]
    """
    if total_field_days < 1:
        raise ValueError("total_field_days must be >= 1")
    if n_bursts < 1:
        raise ValueError("n_bursts must be >= 1")
    if n_bursts > total_field_days:
        raise ValueError("cannot have more bursts than field days")
    if not site_ids:
        raise ValueError("need at least one site")
    base = total_field_days // n_bursts
    remainder = total_field_days % n_bursts
    windows = []
    day = 0
    for burst in range(n_bursts):
        length = base + (1 if burst < remainder else 0)
        site = site_ids[burst % len(site_ids)]
        windows.append((site, day, day + length - 1))
        day += length + gap_days
    return windows


def fieldwork_depth(plan: FieldworkPlan) -> dict:
    """Depth metrics of a fieldwork engagement.

    Returns:
        Dict with ``field_days``, ``n_sites_visited``, ``n_notes``,
        ``notes_per_field_day``, ``reflexive_share`` (share of notes
        that are reflexivity memos), and ``elapsed_days`` (calendar span
        — patchwork trades field days for elapsed time).
    """
    field_days = plan.field_days()
    n_notes = len(plan.notes)
    sites_visited = {site for site, _, _ in plan.visits}
    reflexive = sum(1 for note in plan.notes if note.reflexive)
    if plan.visits:
        elapsed = max(end for _, _, end in plan.visits) - min(
            start for _, start, _ in plan.visits
        ) + 1
    else:
        elapsed = 0
    return {
        "field_days": field_days,
        "n_sites_visited": len(sites_visited),
        "n_notes": n_notes,
        "notes_per_field_day": n_notes / field_days if field_days else 0.0,
        "reflexive_share": reflexive / n_notes if n_notes else 0.0,
        "elapsed_days": elapsed,
    }
