"""Survey instruments, synthetic respondents, and sampling-bias analysis.

The paper's introduction claims that research agendas reflect "those who
are most easily reachable" and footnote 3 notes that survey methods
carry "a host of practical issues" in the networking community.  Real
survey data is the unavailable resource of this reproduction (see
DESIGN.md), so this package pairs a full instrument/response model with
a **synthetic respondent simulator** whose ground truth is controlled —
which is exactly what makes reachability bias measurable (experiment
E10).

Modules:

- :mod:`repro.surveys.instrument` -- questions, scales, instruments.
- :mod:`repro.surveys.respondents` -- stakeholder populations and
  response simulation with response-style biases.
- :mod:`repro.surveys.sampling` -- convenience / quota / chain-referral
  sampling and bias metrics.
- :mod:`repro.surveys.analysis` -- response summaries, Cronbach's alpha,
  cross-tabs.
"""

from repro.surveys.instrument import (
    Question,
    LikertScale,
    Instrument,
    Response,
)
from repro.surveys.respondents import (
    Stakeholder,
    StakeholderPopulation,
    ResponseStyle,
    simulate_responses,
    default_population,
    PROBLEM_CATALOG,
)
from repro.surveys.sampling import (
    convenience_sample,
    quota_sample,
    chain_referral_sample,
    coverage_report,
    SamplingReport,
)
from repro.surveys.analysis import (
    summarize_numeric,
    cronbach_alpha,
    crosstab,
    response_rate_by,
)
from repro.surveys.weighting import (
    post_stratification_weights,
    weighted_mean,
    weighted_likert_mean,
    coverage_deficit,
)

__all__ = [
    "Question",
    "LikertScale",
    "Instrument",
    "Response",
    "Stakeholder",
    "StakeholderPopulation",
    "ResponseStyle",
    "simulate_responses",
    "default_population",
    "PROBLEM_CATALOG",
    "convenience_sample",
    "quota_sample",
    "chain_referral_sample",
    "coverage_report",
    "SamplingReport",
    "summarize_numeric",
    "cronbach_alpha",
    "crosstab",
    "response_rate_by",
    "post_stratification_weights",
    "weighted_mean",
    "weighted_likert_mean",
    "coverage_deficit",
]
