"""Post-stratification weighting — and where it cannot help.

Survey practice re-weights a biased sample to known population strata
shares.  That repairs *under*-representation, but the paper's Section-1
claim is sharper: some strata are not under-represented, they are
**absent** — and no weight on zero observations recovers a voice.  This
module implements the estimator and makes the failure mode explicit
(the E10 discussion in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

from repro.surveys.instrument import Response


def post_stratification_weights(
    sample_strata: Sequence[str],
    population_shares: dict[str, float],
) -> list[float]:
    """Per-respondent weights aligning sample strata to population shares.

    ``weight = population_share / sample_share`` for the respondent's
    stratum.  Strata present in the population but absent from the
    sample receive no weight anywhere — their share of the estimand is
    silently dropped, which is exactly the failure
    :func:`coverage_deficit` reports.

    Raises ValueError when the sample is empty or a sampled stratum is
    missing from ``population_shares``.
    """
    if not sample_strata:
        raise ValueError("sample is empty")
    counts: dict[str, int] = {}
    for stratum in sample_strata:
        counts[stratum] = counts.get(stratum, 0) + 1
    missing = sorted(set(counts) - set(population_shares))
    if missing:
        raise ValueError(f"sampled strata missing population shares: {missing}")
    n = len(sample_strata)
    weights = []
    for stratum in sample_strata:
        sample_share = counts[stratum] / n
        weights.append(population_shares[stratum] / sample_share)
    return weights


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean (weights need not be normalized)."""
    if len(values) != len(weights):
        raise ValueError("values and weights lengths differ")
    if not values:
        raise ValueError("need at least one value")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def weighted_likert_mean(
    responses: Sequence[Response],
    question_id: str,
    population_shares: dict[str, float],
    stratum_key: str = "stratum",
) -> dict:
    """Post-stratified mean of a Likert item.

    Returns:
        Dict with ``raw_mean``, ``weighted_mean``, and
        ``covered_population_share`` (how much of the population the
        weighting can actually speak for — strata absent from the
        sample contribute nothing, and this is the honest denominator).
    """
    values = []
    strata = []
    for response in responses:
        answer = response.answer(question_id)
        stratum = response.metadata.get(stratum_key)
        if answer is None or stratum is None:
            continue
        values.append(float(answer))
        strata.append(str(stratum))
    if not values:
        raise ValueError(f"no answered responses for {question_id!r}")
    weights = post_stratification_weights(strata, population_shares)
    covered = sum(
        share
        for stratum, share in population_shares.items()
        if stratum in set(strata)
    )
    return {
        "raw_mean": sum(values) / len(values),
        "weighted_mean": weighted_mean(values, weights),
        "covered_population_share": covered,
    }


def coverage_deficit(
    sample_strata: Sequence[str],
    population_shares: dict[str, float],
) -> dict:
    """What re-weighting cannot repair.

    Returns:
        Dict with ``unseen_strata`` (population strata with zero sampled
        members, sorted) and ``unrepresentable_share`` (their combined
        population share — the fraction of the population whose answers
        no weighting scheme can reconstruct).
    """
    seen = set(sample_strata)
    unseen = sorted(s for s in population_shares if s not in seen)
    return {
        "unseen_strata": unseen,
        "unrepresentable_share": sum(population_shares[s] for s in unseen),
    }
