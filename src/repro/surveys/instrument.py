"""Survey instruments: questions, scales, responses.

An :class:`Instrument` is an ordered set of questions; a
:class:`Response` maps question ids to answers and is validated against
the instrument.  Question kinds cover the common needs of practitioner
surveys: Likert items, single/multi choice, free text, and numeric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True, slots=True)
class LikertScale:
    """A symmetric agreement scale.

    Attributes:
        points: Number of scale points (commonly 5 or 7).
        labels: Optional point labels, lowest first; must match ``points``.
    """

    points: int = 5
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.points < 2:
            raise ValueError("a Likert scale needs at least 2 points")
        if self.labels and len(self.labels) != self.points:
            raise ValueError(
                f"{len(self.labels)} labels given for a {self.points}-point scale"
            )

    def validate(self, value: object) -> int:
        """Check and normalize an answer to an int in [1, points]."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"Likert answer must be an int, got {value!r}")
        if not 1 <= value <= self.points:
            raise ValueError(
                f"Likert answer {value} outside [1, {self.points}]"
            )
        return value

    @property
    def midpoint(self) -> float:
        """The neutral point ((points + 1) / 2)."""
        return (self.points + 1) / 2


_KINDS = ("likert", "single_choice", "multi_choice", "free_text", "numeric")


@dataclass(frozen=True, slots=True)
class Question:
    """One survey question.

    Attributes:
        question_id: Unique id within the instrument.
        prompt: Question text.
        kind: One of "likert", "single_choice", "multi_choice",
            "free_text", "numeric".
        scale: Likert scale (required for likert questions).
        choices: Allowed options (required for choice questions).
        required: Whether a response must answer this question.
    """

    question_id: str
    prompt: str
    kind: str = "likert"
    scale: LikertScale | None = None
    choices: tuple[str, ...] = ()
    required: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown question kind: {self.kind!r}")
        if self.kind == "likert" and self.scale is None:
            object.__setattr__(self, "scale", LikertScale())
        if self.kind in ("single_choice", "multi_choice") and not self.choices:
            raise ValueError(f"{self.kind} question needs choices")

    def validate(self, value: object) -> object:
        """Validate an answer against the question kind; returns it normalized."""
        if self.kind == "likert":
            assert self.scale is not None
            return self.scale.validate(value)
        if self.kind == "single_choice":
            if value not in self.choices:
                raise ValueError(f"{value!r} not in choices {self.choices}")
            return value
        if self.kind == "multi_choice":
            if not isinstance(value, (list, tuple, set)):
                raise ValueError("multi_choice answer must be a collection")
            bad = [v for v in value if v not in self.choices]
            if bad:
                raise ValueError(f"invalid options: {bad}")
            return tuple(sorted(set(value)))
        if self.kind == "numeric":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"numeric answer must be a number, got {value!r}")
            return float(value)
        # free_text
        if not isinstance(value, str):
            raise ValueError(f"free_text answer must be a string, got {value!r}")
        return value


class Instrument:
    """An ordered, validated set of questions.

    Example:
        >>> inst = Instrument("ops-survey")
        >>> inst.add(Question("q1", "Peering policy matters to my network."))
        >>> inst.question_ids()
        ['q1']
    """

    def __init__(self, name: str, questions: Iterable[Question] = ()) -> None:
        self.name = name
        self._questions: dict[str, Question] = {}
        self._order: list[str] = []
        for question in questions:
            self.add(question)

    def __len__(self) -> int:
        return len(self._order)

    def add(self, question: Question) -> None:
        """Append a question; rejects duplicate ids."""
        if question.question_id in self._questions:
            raise ValueError(f"duplicate question id: {question.question_id!r}")
        self._questions[question.question_id] = question
        self._order.append(question.question_id)

    def question(self, question_id: str) -> Question:
        """Question by id (KeyError when absent)."""
        return self._questions[question_id]

    def questions(self) -> list[Question]:
        """Questions in instrument order."""
        return [self._questions[qid] for qid in self._order]

    def question_ids(self) -> list[str]:
        """Question ids in instrument order."""
        return list(self._order)

    def likert_ids(self) -> list[str]:
        """Ids of the Likert questions (the usual scale-analysis subset)."""
        return [qid for qid in self._order if self._questions[qid].kind == "likert"]

    def validate_response(self, answers: dict[str, object]) -> dict[str, object]:
        """Validate raw answers; returns normalized answers.

        Raises ValueError on unknown ids, missing required answers, or
        kind-invalid values.
        """
        unknown = [qid for qid in answers if qid not in self._questions]
        if unknown:
            raise ValueError(f"answers for unknown questions: {unknown}")
        normalized: dict[str, object] = {}
        for qid in self._order:
            question = self._questions[qid]
            if qid not in answers:
                if question.required:
                    raise ValueError(f"missing required answer: {qid!r}")
                continue
            normalized[qid] = question.validate(answers[qid])
        return normalized


@dataclass(frozen=True, slots=True)
class Response:
    """One validated response to an instrument.

    Build through :meth:`Response.create` so answers are validated.

    Attributes:
        respondent_id: Who answered.
        instrument_name: Which instrument.
        answers: question_id -> normalized answer.
        metadata: Stratum/segment context carried from the respondent.
    """

    respondent_id: str
    instrument_name: str
    answers: dict[str, object]
    metadata: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        respondent_id: str,
        instrument: Instrument,
        answers: dict[str, object],
        metadata: dict | None = None,
    ) -> "Response":
        """Validate ``answers`` against ``instrument`` and build a Response."""
        normalized = instrument.validate_response(answers)
        return cls(
            respondent_id=respondent_id,
            instrument_name=instrument.name,
            answers=normalized,
            metadata=dict(metadata or {}),
        )

    def answer(self, question_id: str, default: object = None) -> object:
        """Answer for ``question_id`` (default when unanswered)."""
        return self.answers.get(question_id, default)
