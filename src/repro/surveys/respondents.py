"""Stakeholder populations and synthetic response simulation.

The unavailable resource of this reproduction is real survey data, so we
simulate the people instead.  A :class:`StakeholderPopulation` holds
stakeholders in *reachability strata* — hyperscaler engineers reachable
through existing professional networks at one end, operators of fragile
last-mile networks at the other (paper, Section 1).  Each stakeholder
experiences a subset of problems from :data:`PROBLEM_CATALOG` (the
ground truth that sampling schemes will or won't surface) and answers
Likert items from latent attitudes perturbed by documented response
styles (acquiescence, extremity, central tendency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.surveys.instrument import Instrument, Response

# Problem catalog: problem id -> (description, strata that experience it).
# Strata mirror the paper's framing: dominant players' problems vs the
# "entire classes of challenges" (economic precarity, infrastructural
# instability, linguistic/geopolitical marginality) of Section 1.
PROBLEM_CATALOG: dict[str, dict] = {
    "dc-incast": {
        "description": "Incast congestion in datacenter fabrics",
        "strata": ("hyperscaler-engineer",),
    },
    "dc-telemetry-volume": {
        "description": "Telemetry volume overwhelms monitoring pipelines",
        "strata": ("hyperscaler-engineer", "enterprise-operator"),
    },
    "interdomain-route-leaks": {
        "description": "Route leaks disrupt interdomain reachability",
        "strata": ("hyperscaler-engineer", "regional-isp", "ixp-operator"),
    },
    "peering-negotiation-power": {
        "description": "Asymmetric bargaining power in peering negotiations",
        "strata": ("regional-isp", "ixp-operator"),
    },
    "backhaul-cost": {
        "description": "Backhaul transit costs dominate operating budgets",
        "strata": ("regional-isp", "community-operator"),
    },
    "power-instability": {
        "description": "Unreliable grid power takes towers offline",
        "strata": ("community-operator", "rural-user"),
    },
    "spare-parts-logistics": {
        "description": "Replacement hardware takes months to arrive",
        "strata": ("community-operator",),
    },
    "volunteer-burnout": {
        "description": "Volunteer maintainers burn out and leave",
        "strata": ("community-operator",),
    },
    "regulatory-instability": {
        "description": "Licensing rules change unpredictably",
        "strata": ("community-operator", "regional-isp", "regulator"),
    },
    "spectrum-access": {
        "description": "No affordable access to licensed spectrum",
        "strata": ("community-operator",),
    },
    "linguistic-localization": {
        "description": "Tooling and documentation exist only in English",
        "strata": ("community-operator", "rural-user"),
    },
    "affordability": {
        "description": "Service prices exceed what households can pay",
        "strata": ("rural-user", "community-operator"),
    },
    "device-constraints": {
        "description": "Users access the network through low-end shared devices",
        "strata": ("rural-user",),
    },
    "data-sovereignty": {
        "description": "Community data is stored under foreign jurisdiction",
        "strata": ("regulator", "community-operator", "indigenous-operator"),
    },
    "cultural-consent": {
        "description": "Research engagement ignores community consent norms",
        "strata": ("indigenous-operator", "rural-user"),
    },
    "ixp-traffic-gravity": {
        "description": "Domestic traffic detours through foreign IXPs",
        "strata": ("ixp-operator", "regional-isp", "regulator"),
    },
}

# Default reachability per stratum: the probability that a convenience
# contact attempt reaches a member, and the relative ease of recruiting.
DEFAULT_STRATA: dict[str, dict] = {
    "hyperscaler-engineer": {"reachability": 0.90, "share": 0.18},
    "enterprise-operator": {"reachability": 0.70, "share": 0.15},
    "regional-isp": {"reachability": 0.45, "share": 0.17},
    "ixp-operator": {"reachability": 0.40, "share": 0.08},
    "regulator": {"reachability": 0.35, "share": 0.07},
    "community-operator": {"reachability": 0.15, "share": 0.15},
    "indigenous-operator": {"reachability": 0.08, "share": 0.05},
    "rural-user": {"reachability": 0.05, "share": 0.15},
}


@dataclass(frozen=True, slots=True)
class ResponseStyle:
    """Latent response-style parameters for one respondent.

    Attributes:
        acquiescence: Tendency to agree regardless of content (shifts
            answers up the scale), in scale points.
        extremity: Tendency to pick scale endpoints (>1 stretches
            answers away from the midpoint; <1 compresses).
        noise_sd: Standard deviation of per-item Gaussian noise.
    """

    acquiescence: float = 0.0
    extremity: float = 1.0
    noise_sd: float = 0.6


@dataclass(frozen=True, slots=True)
class Stakeholder:
    """A member of the studied population.

    Attributes:
        stakeholder_id: Unique id.
        stratum: Reachability stratum key.
        reachability: Probability a convenience contact succeeds.
        problems: Problem ids this stakeholder actually experiences.
        attitudes: Latent agreement (in scale points around the
            midpoint) per question id; unknown questions default to 0.
        style: Response-style parameters.
        referrals: Ids of peers this stakeholder can refer researchers to
            (the social fabric chain-referral sampling walks).
    """

    stakeholder_id: str
    stratum: str
    reachability: float
    problems: tuple[str, ...] = ()
    attitudes: dict[str, float] = field(default_factory=dict)
    style: ResponseStyle = field(default_factory=ResponseStyle)
    referrals: tuple[str, ...] = ()


class StakeholderPopulation:
    """A population of stakeholders with stratum indexing."""

    def __init__(self, stakeholders: Iterable[Stakeholder] = ()) -> None:
        self._members: dict[str, Stakeholder] = {}
        for stakeholder in stakeholders:
            self.add(stakeholder)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(sorted(self._members.values(), key=lambda s: s.stakeholder_id))

    def add(self, stakeholder: Stakeholder) -> None:
        """Add a member; rejects duplicate ids."""
        if stakeholder.stakeholder_id in self._members:
            raise ValueError(f"duplicate stakeholder: {stakeholder.stakeholder_id!r}")
        self._members[stakeholder.stakeholder_id] = stakeholder

    def get(self, stakeholder_id: str) -> Stakeholder:
        """Member by id (KeyError when absent)."""
        return self._members[stakeholder_id]

    def strata(self) -> list[str]:
        """Distinct stratum keys, sorted."""
        return sorted({s.stratum for s in self._members.values()})

    def members_of(self, stratum: str) -> list[Stakeholder]:
        """Members of one stratum, sorted by id."""
        return [s for s in self if s.stratum == stratum]

    def problems_present(self) -> set[str]:
        """All problem ids experienced by at least one member."""
        present: set[str] = set()
        for stakeholder in self._members.values():
            present.update(stakeholder.problems)
        return present

    def problems_by_stratum(self) -> dict[str, set[str]]:
        """Stratum -> union of problems its members experience."""
        result: dict[str, set[str]] = {}
        for stakeholder in self._members.values():
            result.setdefault(stakeholder.stratum, set()).update(
                stakeholder.problems
            )
        return result


def default_population(
    size: int = 1000,
    seed: int = 0,
    strata: dict[str, dict] | None = None,
) -> StakeholderPopulation:
    """Generate the default stakeholder population for experiment E10.

    Members are distributed across :data:`DEFAULT_STRATA` by share;
    each member experiences a random subset (1..all) of their stratum's
    catalog problems; referrals connect members mostly within-stratum
    with occasional cross-stratum ties (what makes chain referral able
    to escape the convenient core).

    Deterministic for a given ``(size, seed, strata)``.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    strata = strata or DEFAULT_STRATA
    rng = random.Random(seed)
    names = sorted(strata)
    weights = [strata[name]["share"] for name in names]

    assigned = rng.choices(names, weights=weights, k=size)
    members: list[Stakeholder] = []
    ids_by_stratum: dict[str, list[str]] = {name: [] for name in names}
    problems_by_stratum = {
        name: sorted(
            pid for pid, spec in PROBLEM_CATALOG.items() if name in spec["strata"]
        )
        for name in names
    }
    for i, stratum in enumerate(assigned):
        stakeholder_id = f"s{i:05d}"
        ids_by_stratum[stratum].append(stakeholder_id)
        pool = problems_by_stratum[stratum]
        n_problems = rng.randint(1, len(pool)) if pool else 0
        problems = tuple(sorted(rng.sample(pool, k=n_problems))) if pool else ()
        reach = strata[stratum]["reachability"]
        reachability = min(1.0, max(0.01, rng.gauss(reach, 0.05)))
        style = ResponseStyle(
            acquiescence=rng.gauss(0.0, 0.3),
            extremity=min(2.0, max(0.5, rng.gauss(1.0, 0.2))),
            noise_sd=min(1.5, max(0.2, rng.gauss(0.6, 0.15))),
        )
        members.append(
            Stakeholder(
                stakeholder_id=stakeholder_id,
                stratum=stratum,
                reachability=reachability,
                problems=problems,
                style=style,
            )
        )

    # Referral ties: ~4 within-stratum, ~1 cross-stratum per member.
    finished: list[Stakeholder] = []
    all_ids = [m.stakeholder_id for m in members]
    for member in members:
        same = ids_by_stratum[member.stratum]
        within = [
            sid for sid in rng.sample(same, k=min(4, len(same)))
            if sid != member.stakeholder_id
        ]
        cross = rng.sample(all_ids, k=min(2, len(all_ids)))
        referrals = tuple(sorted(set(within + cross) - {member.stakeholder_id}))
        finished.append(
            Stakeholder(
                stakeholder_id=member.stakeholder_id,
                stratum=member.stratum,
                reachability=member.reachability,
                problems=member.problems,
                attitudes=member.attitudes,
                style=member.style,
                referrals=referrals,
            )
        )
    return StakeholderPopulation(finished)


def _likert_answer(
    rng: random.Random,
    points: int,
    attitude: float,
    style: ResponseStyle,
) -> int:
    midpoint = (points + 1) / 2
    raw = midpoint + attitude * style.extremity + style.acquiescence
    raw += rng.gauss(0.0, style.noise_sd)
    return int(min(points, max(1, round(raw))))


def simulate_responses(
    stakeholders: Sequence[Stakeholder],
    instrument: Instrument,
    seed: int = 0,
    problem_question_prefix: str = "problem:",
) -> list[Response]:
    """Simulate each stakeholder answering ``instrument``.

    Question semantics:

    - Likert questions whose id is ``problem:<problem_id>`` ask "how much
      does <problem> affect you"; the latent attitude is strongly
      positive when the stakeholder experiences the problem and strongly
      negative otherwise, so the ground truth is recoverable.
    - Other Likert questions draw on the stakeholder's ``attitudes``
      entry (default 0 = neutral).
    - ``multi_choice`` questions whose id is ``problems_experienced``
      receive the stakeholder's true problems intersected with the
      offered choices.
    - ``free_text``/``numeric``/``single_choice`` questions are answered
      neutrally (empty string / 0 / first choice) unless an attitude is
      supplied — they exist so instruments round-trip, not to model prose.

    Returns one :class:`Response` per stakeholder (no nonresponse here;
    sampling modules model who gets *asked* in the first place).
    """
    rng = random.Random(seed)
    responses = []
    for stakeholder in stakeholders:
        answers: dict[str, object] = {}
        for question in instrument.questions():
            if question.kind == "likert":
                assert question.scale is not None
                if question.question_id.startswith(problem_question_prefix):
                    problem_id = question.question_id[len(problem_question_prefix):]
                    attitude = 1.8 if problem_id in stakeholder.problems else -1.8
                else:
                    attitude = stakeholder.attitudes.get(question.question_id, 0.0)
                answers[question.question_id] = _likert_answer(
                    rng, question.scale.points, attitude, stakeholder.style
                )
            elif question.kind == "multi_choice":
                if question.question_id == "problems_experienced":
                    answers[question.question_id] = tuple(
                        sorted(set(stakeholder.problems) & set(question.choices))
                    )
                else:
                    answers[question.question_id] = ()
            elif question.kind == "single_choice":
                if question.question_id == "stratum":
                    value = (
                        stakeholder.stratum
                        if stakeholder.stratum in question.choices
                        else question.choices[0]
                    )
                else:
                    value = question.choices[0]
                answers[question.question_id] = value
            elif question.kind == "numeric":
                answers[question.question_id] = float(
                    stakeholder.attitudes.get(question.question_id, 0.0)
                )
            else:  # free_text
                answers[question.question_id] = ""
        responses.append(
            Response.create(
                stakeholder.stakeholder_id,
                instrument,
                answers,
                metadata={"stratum": stakeholder.stratum},
            )
        )
    return responses
