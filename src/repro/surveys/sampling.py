"""Sampling schemes and reachability-bias metrics.

Operationalizes the paper's core empirical claim (Section 1): problems
enter the research pipeline through "those who are most easily
reachable", so convenience recruitment systematically misses the
problems of low-reachability strata.  Three recruiters are implemented:

- :func:`convenience_sample` -- contact attempts succeed with each
  stakeholder's reachability probability (the default mode the paper
  criticizes).
- :func:`quota_sample` -- stratified recruitment with per-stratum
  quotas (costly: expected attempts scale with 1/reachability).
- :func:`chain_referral_sample` -- PAR-style snowball recruitment that
  walks referral ties; a referred contact is far more likely to engage
  (the "work before the work" of building rapport).

:func:`coverage_report` then measures what each sample can see: which
catalog problems appear among sampled stakeholders, per-stratum
representation, and the bias of surfaced problem-priorities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.surveys.respondents import PROBLEM_CATALOG, StakeholderPopulation


@dataclass(frozen=True, slots=True)
class SamplingReport:
    """Outcome of one recruitment run.

    Attributes:
        scheme: Recruiter name.
        sampled_ids: Recruited stakeholder ids, in recruitment order.
        attempts: Contact attempts expended.
        stratum_counts: Stratum -> number of recruits.
    """

    scheme: str
    sampled_ids: tuple[str, ...]
    attempts: int
    stratum_counts: dict[str, int]

    @property
    def n_sampled(self) -> int:
        """Number of recruits."""
        return len(self.sampled_ids)

    @property
    def yield_rate(self) -> float:
        """Recruits per contact attempt."""
        return self.n_sampled / self.attempts if self.attempts else 0.0


def convenience_sample(
    population: StakeholderPopulation,
    target: int,
    seed: int = 0,
    max_attempts: int | None = None,
) -> SamplingReport:
    """Recruit by contacting uniformly random members until ``target``.

    Each attempt reaches the contacted member with their individual
    ``reachability``; unreachable members may be retried later (they are
    not removed from the pool — researchers rarely know who ignored the
    email).  Stops at ``max_attempts`` (default ``20 * target``).
    """
    if target < 1:
        raise ValueError("target must be >= 1")
    rng = random.Random(seed)
    members = list(population)
    max_attempts = max_attempts if max_attempts is not None else 20 * target
    recruited: list[str] = []
    recruited_set: set[str] = set()
    attempts = 0
    while len(recruited) < target and attempts < max_attempts:
        candidate = rng.choice(members)
        attempts += 1
        if candidate.stakeholder_id in recruited_set:
            continue
        if rng.random() < candidate.reachability:
            recruited.append(candidate.stakeholder_id)
            recruited_set.add(candidate.stakeholder_id)
    return _report("convenience", population, recruited, attempts)


def quota_sample(
    population: StakeholderPopulation,
    per_stratum: int,
    seed: int = 0,
    max_attempts_per_stratum: int | None = None,
) -> SamplingReport:
    """Recruit ``per_stratum`` members from every stratum.

    Within a stratum, attempts target random members with their
    reachability, so filling low-reachability quotas is expensive —
    the report's ``attempts`` makes that cost visible.
    """
    if per_stratum < 1:
        raise ValueError("per_stratum must be >= 1")
    rng = random.Random(seed)
    cap = (
        max_attempts_per_stratum
        if max_attempts_per_stratum is not None
        else 100 * per_stratum
    )
    recruited: list[str] = []
    attempts = 0
    for stratum in population.strata():
        members = population.members_of(stratum)
        got: set[str] = set()
        stratum_attempts = 0
        while len(got) < per_stratum and stratum_attempts < cap:
            candidate = rng.choice(members)
            stratum_attempts += 1
            if candidate.stakeholder_id in got:
                continue
            if rng.random() < candidate.reachability:
                got.add(candidate.stakeholder_id)
                recruited.append(candidate.stakeholder_id)
        attempts += stratum_attempts
    return _report("quota", population, recruited, attempts)


def chain_referral_sample(
    population: StakeholderPopulation,
    target: int,
    seeds_per_stratum: int = 1,
    seed: int = 0,
    referral_boost: float = 0.75,
    max_attempts: int | None = None,
) -> SamplingReport:
    """Snowball recruitment through referral ties.

    Starts from a few seed contacts per stratum (recruited at their raw
    reachability — finding the first community partner is the hard
    part), then follows referrals: a referred contact engages with
    probability ``reachability + referral_boost * (1 - reachability)``,
    modeling the trust a warm introduction carries (Section 5.1's
    partnerships; Le Dantec & Fox's "work before the work").
    """
    if target < 1:
        raise ValueError("target must be >= 1")
    rng = random.Random(seed)
    max_attempts = max_attempts if max_attempts is not None else 20 * target
    recruited: list[str] = []
    recruited_set: set[str] = set()
    frontier: list[str] = []
    attempts = 0

    # Seed phase: cold contacts within each stratum.
    for stratum in population.strata():
        members = population.members_of(stratum)
        found = 0
        stratum_attempts = 0
        while found < seeds_per_stratum and stratum_attempts < 50:
            candidate = rng.choice(members)
            stratum_attempts += 1
            attempts += 1
            if candidate.stakeholder_id in recruited_set:
                continue
            if rng.random() < candidate.reachability:
                recruited.append(candidate.stakeholder_id)
                recruited_set.add(candidate.stakeholder_id)
                frontier.append(candidate.stakeholder_id)
                found += 1

    # Referral phase.
    while frontier and len(recruited) < target and attempts < max_attempts:
        current = population.get(frontier.pop(0))
        referrals = [r for r in current.referrals if r not in recruited_set]
        rng.shuffle(referrals)
        for referred_id in referrals:
            if len(recruited) >= target or attempts >= max_attempts:
                break
            referred = population.get(referred_id)
            attempts += 1
            engage = referred.reachability + referral_boost * (
                1.0 - referred.reachability
            )
            if rng.random() < engage:
                recruited.append(referred_id)
                recruited_set.add(referred_id)
                frontier.append(referred_id)
    return _report("chain-referral", population, recruited, attempts)


def _report(
    scheme: str,
    population: StakeholderPopulation,
    recruited: Sequence[str],
    attempts: int,
) -> SamplingReport:
    counts: dict[str, int] = {}
    for sid in recruited:
        stratum = population.get(sid).stratum
        counts[stratum] = counts.get(stratum, 0) + 1
    return SamplingReport(
        scheme=scheme,
        sampled_ids=tuple(recruited),
        attempts=attempts,
        stratum_counts=counts,
    )


def coverage_report(
    population: StakeholderPopulation,
    report: SamplingReport,
) -> dict:
    """What a sample can and cannot see.

    Returns:
        Dict with:

        - ``problem_coverage``: fraction of population-present problems
          experienced by at least one sampled member.
        - ``missed_problems``: sorted ids of problems nobody in the
          sample experiences.
        - ``stratum_representation``: stratum -> (sample share) /
          (population share); 0.0 for unsampled strata.
        - ``low_reach_problem_coverage``: coverage restricted to
          problems whose experiencing strata all have reachability
          below the population median (the "invisible classes of
          challenges" of Section 1).
        - ``low_reach_voice_share``: among all problem-experiences the
          *sample* reports, the fraction concerning low-reach problems.
          Binary coverage saturates once a couple of members of a
          marginal stratum are recruited; voice share measures how loud
          those problems actually are in the surfaced agenda.
        - ``population_low_reach_voice_share``: the same fraction in
          the full population — the unbiased baseline.
        - ``voice_representation``: sample voice share / population
          voice share (1.0 = faithful, < 1 = muted).
    """
    sampled = [population.get(sid) for sid in report.sampled_ids]
    present = population.problems_present()
    seen: set[str] = set()
    for stakeholder in sampled:
        seen.update(stakeholder.problems)
    seen &= present

    # Stratum representation ratios.
    population_counts: dict[str, int] = {}
    for member in population:
        population_counts[member.stratum] = (
            population_counts.get(member.stratum, 0) + 1
        )
    n_pop = len(population)
    n_sample = max(1, report.n_sampled)
    representation = {}
    for stratum, pop_count in sorted(population_counts.items()):
        sample_share = report.stratum_counts.get(stratum, 0) / n_sample
        pop_share = pop_count / n_pop
        representation[stratum] = sample_share / pop_share if pop_share else 0.0

    # Low-reachability problems: every experiencing stratum is below the
    # median stratum reachability.
    stratum_reach = {
        stratum: (
            sum(m.reachability for m in population.members_of(stratum))
            / max(1, len(population.members_of(stratum)))
        )
        for stratum in population.strata()
    }
    reaches = sorted(stratum_reach.values())
    median_reach = reaches[len(reaches) // 2]
    low_reach_problems = {
        pid
        for pid in present
        if all(
            stratum_reach.get(stratum, 1.0) < median_reach
            for stratum in PROBLEM_CATALOG.get(pid, {}).get("strata", ())
            if stratum in stratum_reach
        )
        and any(
            stratum in stratum_reach
            for stratum in PROBLEM_CATALOG.get(pid, {}).get("strata", ())
        )
    }
    low_seen = seen & low_reach_problems

    def voice_share(members) -> float:
        low = total = 0
        for stakeholder in members:
            for problem in stakeholder.problems:
                total += 1
                if problem in low_reach_problems:
                    low += 1
        return low / total if total else 0.0

    sample_voice = voice_share(sampled)
    population_voice = voice_share(population)
    return {
        "problem_coverage": len(seen) / len(present) if present else 1.0,
        "missed_problems": sorted(present - seen),
        "stratum_representation": representation,
        "low_reach_problem_coverage": (
            len(low_seen) / len(low_reach_problems) if low_reach_problems else 1.0
        ),
        "low_reach_voice_share": sample_voice,
        "population_low_reach_voice_share": population_voice,
        "voice_representation": (
            sample_voice / population_voice if population_voice else 1.0
        ),
    }
