"""Survey response analysis.

Descriptive summaries, scale reliability (Cronbach's alpha), cross-tabs,
and response-rate breakdowns — the standard analysis battery for the
practitioner surveys the paper's footnote 3 gestures at.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.surveys.instrument import Response


def summarize_numeric(values: Sequence[float]) -> dict:
    """Mean/sd/min/median/max summary of a numeric answer column."""
    if not values:
        raise ValueError("need at least one value")
    array = np.asarray(values, dtype=float)
    return {
        "n": int(array.size),
        "mean": float(array.mean()),
        "sd": float(array.std(ddof=1)) if array.size > 1 else 0.0,
        "min": float(array.min()),
        "median": float(np.median(array)),
        "max": float(array.max()),
    }


def cronbach_alpha(
    responses: Sequence[Response], item_ids: Sequence[str]
) -> float:
    """Cronbach's alpha for a multi-item scale.

    ``alpha = k/(k-1) * (1 - sum(item variances)/variance(total))``.
    Respondents missing any item are dropped listwise.

    Raises ValueError with fewer than 2 items or 2 complete respondents,
    or when the total score has zero variance.
    """
    if len(item_ids) < 2:
        raise ValueError("Cronbach's alpha needs at least 2 items")
    rows = []
    for response in responses:
        values = [response.answer(qid) for qid in item_ids]
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            rows.append([float(v) for v in values])
    if len(rows) < 2:
        raise ValueError("need at least 2 complete respondents")
    matrix = np.asarray(rows)
    k = matrix.shape[1]
    item_variances = matrix.var(axis=0, ddof=1)
    total_variance = matrix.sum(axis=1).var(ddof=1)
    if total_variance == 0:
        raise ValueError("total score has zero variance")
    return float(k / (k - 1) * (1.0 - item_variances.sum() / total_variance))


def crosstab(
    responses: Sequence[Response],
    row_key: str,
    column_question: str,
) -> dict[tuple[str, object], int]:
    """Cross-tabulate a metadata key against a question's answers.

    Args:
        responses: The responses.
        row_key: Metadata key (e.g. "stratum").
        column_question: Question id whose answer labels the columns.

    Returns:
        ``(row_value, answer) -> count``; unanswered questions and
        missing metadata are skipped.
    """
    table: Counter = Counter()
    for response in responses:
        row = response.metadata.get(row_key)
        answer = response.answer(column_question)
        if row is None or answer is None:
            continue
        table[(str(row), answer)] += 1
    return dict(table)


def response_rate_by(
    responses: Sequence[Response],
    population_counts: dict[str, int],
    key: str = "stratum",
) -> dict[str, float]:
    """Response rate per group: respondents / population members.

    Groups present in ``population_counts`` but absent from the
    responses report 0.0; groups with zero population are skipped.
    """
    got: Counter = Counter(
        str(r.metadata.get(key)) for r in responses if r.metadata.get(key) is not None
    )
    rates = {}
    for group, total in sorted(population_counts.items()):
        if total <= 0:
            continue
        rates[group] = got.get(group, 0) / total
    return rates
