"""E6: mandatory-peering evasion (the Telmex case study).

Claim (paper §3, Rosa [38]): Telmex "used their BGP knowledge to
circumvent regulations requiring mandatory peering in IXPs ... playing
with different ASNs and arguing that they were responding to the law" —
"the difficulties of regulating peering by law and the limitations of
protocoling".

Shape expected: honest compliance raises the local-traffic share
substantially over no-regulation; the ASN-split evasion returns traffic
locality to the no-regulation level while remaining compliant under
ASN-level enforcement; organization-level enforcement restores the
honest outcome.  (The ablation the paper's finding implies: the
loophole is in *how the regulator identifies the operator*.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.netsim.bgp.scenarios import run_mandatory_peering_study


@dataclass(frozen=True)
class E6Spec(ExperimentSpec):
    """Knobs for E6: market size."""

    n_small_isps: int = spec_field(20, minimum=2, maximum=500, help="small ISPs in the synthetic market")

    EXPERIMENT_ID: ClassVar[str] = "E6"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_small_isps": 40},
    }


def run(
    spec: E6Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E6; see module docstring for the expected shape."""
    spec = resolve_spec(E6Spec, spec, fast, seed)
    results = run_mandatory_peering_study(
        n_small_isps=spec.n_small_isps, seed=spec.seed
    )

    table = Table(
        [
            "variant", "local_share", "tromboned_share", "via_ixp_share",
            "compliant_asn", "compliant_org",
        ],
        title="E6: domestic traffic locality under four regulatory variants",
    )
    for variant in (
        "no_regulation", "honest_compliance", "asn_split_evasion",
        "org_enforcement",
    ):
        record = results[variant]
        table.add_row(
            [
                variant,
                record["local_share"],
                record["tromboned_share"],
                record["via_ixp_share"],
                record["compliant_asn_level"],
                record["compliant_org_level"],
            ]
        )

    none = results["no_regulation"]
    honest = results["honest_compliance"]
    evasion = results["asn_split_evasion"]
    enforced = results["org_enforcement"]
    result = make_result("E6")
    result.tables = [table]
    result.checks = {
        "honesty_improves_locality": (
            honest["local_share"] > none["local_share"] + 0.05
        ),
        "evasion_neutralizes_mandate": (
            abs(evasion["local_share"] - none["local_share"]) < 0.02
        ),
        "evasion_is_asn_compliant": evasion["compliant_asn_level"],
        "evasion_is_not_org_compliant": not evasion["compliant_org_level"],
        "org_enforcement_restores_locality": (
            abs(enforced["local_share"] - honest["local_share"]) < 0.02
        ),
    }
    return result
