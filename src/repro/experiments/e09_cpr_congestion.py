"""E9: congestion management as a common-pool resource.

Claim (paper §4, Johnson et al. [28]): community-based congestion
management — treating shared capacity as a commons governed by the
community's own rules — works in an operating community network.

Shape expected: under overload with persistent heavy users, CPR
management beats FIFO on fairness (Jain) and overall satisfaction, and
beats static caps on utilization; heavy users pay a moderate (not
punitive) satisfaction cost.  The sanction-strength ablation shows
fairness robust across sanction factors while heavy-user satisfaction
falls as sanctions harden — the knob a community actually debates.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, make_result
from repro.io.tables import Table
from repro.netsim.community.congestion import run_congestion_study


def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E9; see module docstring for the expected shape."""
    n_rounds = 120 if fast else 400
    results = run_congestion_study(n_rounds=n_rounds, seed=seed)

    table = Table(
        [
            "policy", "jain", "satisfaction", "utilization",
            "starved_rounds", "heavy_user_sat",
        ],
        title="E9a: allocator comparison under overload",
    )
    for policy in ("fifo", "static_cap", "maxmin", "cpr"):
        record = results[policy]
        table.add_row(
            [
                policy,
                record["mean_jain"],
                record["mean_satisfaction"],
                record["mean_utilization"],
                record["starved_rounds_share"],
                record["heavy_user_satisfaction"],
            ]
        )

    ablation = Table(
        ["sanction_factor", "jain", "satisfaction", "heavy_user_sat"],
        title="E9b: CPR sanction-strength ablation",
    )
    for factor in (0.8, 0.5, 0.2):
        record = run_congestion_study(
            n_rounds=n_rounds, seed=seed, sanction_factor=factor
        )["cpr"]
        ablation.add_row(
            [
                factor,
                record["mean_jain"],
                record["mean_satisfaction"],
                record["heavy_user_satisfaction"],
            ]
        )

    fifo = results["fifo"]
    static = results["static_cap"]
    cpr = results["cpr"]
    result = make_result("E9")
    result.tables = [table, ablation]
    result.checks = {
        "cpr_fairer_than_fifo": cpr["mean_jain"] > fifo["mean_jain"] + 0.02,
        "cpr_more_satisfying_than_fifo": (
            cpr["mean_satisfaction"] > fifo["mean_satisfaction"]
        ),
        "cpr_beats_static_cap_utilization": (
            cpr["mean_utilization"] > static["mean_utilization"] + 0.05
        ),
        "cpr_rarely_starves": (
            cpr["starved_rounds_share"] < fifo["starved_rounds_share"] - 0.2
        ),
        "heavy_users_not_crushed": cpr["heavy_user_satisfaction"] > 0.5,
    }
    return result
