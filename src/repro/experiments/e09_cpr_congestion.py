"""E9: congestion management as a common-pool resource.

Claim (paper §4, Johnson et al. [28]): community-based congestion
management — treating shared capacity as a commons governed by the
community's own rules — works in an operating community network.

Shape expected: under overload with persistent heavy users, CPR
management beats FIFO on fairness (Jain) and overall satisfaction, and
beats static caps on utilization; heavy users pay a moderate (not
punitive) satisfaction cost.  The sanction-strength ablation shows
fairness robust across sanction factors while heavy-user satisfaction
falls as sanctions harden — the knob a community actually debates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.netsim.community.congestion import run_congestion_study


@dataclass(frozen=True)
class E9Spec(ExperimentSpec):
    """Knobs for E9: horizon and the sanction-strength ablation axis."""

    n_rounds: int = spec_field(120, minimum=10, maximum=100_000, help="allocation rounds simulated")
    sanction_factors: tuple[float, ...] = spec_field(
        (0.8, 0.5, 0.2),
        minimum=0.0,
        maximum=1.0,
        help="CPR sanction factors ablated",
    )

    EXPERIMENT_ID: ClassVar[str] = "E9"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_rounds": 400},
    }


def run(
    spec: E9Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E9; see module docstring for the expected shape."""
    spec = resolve_spec(E9Spec, spec, fast, seed)
    n_rounds = spec.n_rounds
    results = run_congestion_study(n_rounds=n_rounds, seed=spec.seed)

    table = Table(
        [
            "policy", "jain", "satisfaction", "utilization",
            "starved_rounds", "heavy_user_sat",
        ],
        title="E9a: allocator comparison under overload",
    )
    for policy in ("fifo", "static_cap", "maxmin", "cpr"):
        record = results[policy]
        table.add_row(
            [
                policy,
                record["mean_jain"],
                record["mean_satisfaction"],
                record["mean_utilization"],
                record["starved_rounds_share"],
                record["heavy_user_satisfaction"],
            ]
        )

    ablation = Table(
        ["sanction_factor", "jain", "satisfaction", "heavy_user_sat"],
        title="E9b: CPR sanction-strength ablation",
    )
    for factor in spec.sanction_factors:
        record = run_congestion_study(
            n_rounds=n_rounds, seed=spec.seed, sanction_factor=factor
        )["cpr"]
        ablation.add_row(
            [
                factor,
                record["mean_jain"],
                record["mean_satisfaction"],
                record["heavy_user_satisfaction"],
            ]
        )

    fifo = results["fifo"]
    static = results["static_cap"]
    cpr = results["cpr"]
    result = make_result("E9")
    result.tables = [table, ablation]
    result.checks = {
        "cpr_fairer_than_fifo": cpr["mean_jain"] > fifo["mean_jain"] + 0.02,
        "cpr_more_satisfying_than_fifo": (
            cpr["mean_satisfaction"] > fifo["mean_satisfaction"]
        ),
        "cpr_beats_static_cap_utilization": (
            cpr["mean_utilization"] > static["mean_utilization"] + 0.05
        ),
        "cpr_rarely_starves": (
            cpr["starved_rounds_share"] < fifo["starved_rounds_share"] - 0.2
        ),
        "heavy_users_not_crushed": cpr["heavy_user_satisfaction"] > 0.5,
    }
    return result
