"""E11: the Section-5 recommendations audit is sensitive and separable.

Claim (paper §5): the three recommendations — document partnerships,
detail informative conversations, reflect on positionality — are
concrete enough to check.  This experiment builds a fully documented
reference project, then strips one practice at a time and verifies the
audit (i) scores the full project near 1.0, (ii) attributes each
stripped practice to exactly the right sub-score, and (iii) leaves the
other two sub-scores untouched (separability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.core.par import EngagementEvent, EngagementKind, EngagementLedger
from repro.core.positionality import PositionalityStatement
from repro.core.project import ConversationRecord, Partner, ResearchProject
from repro.core.recommendations import audit_project
from repro.core.stages import ResearchStage
from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec
from repro.io.tables import Table


@dataclass(frozen=True)
class E11Spec(ExperimentSpec):
    """Knobs for E11 — none beyond ``seed``; the audit is deterministic."""

    EXPERIMENT_ID: ClassVar[str] = "E11"
    PRESETS: ClassVar[dict[str, dict]] = {"fast": {}, "full": {}}


def build_reference_project() -> ResearchProject:
    """A project that follows every Section-5 practice."""
    project = ResearchProject(
        name="community-backhaul-study",
        description="Shared backhaul economics in a rural cooperative",
    )
    project.add_partner(
        Partner(
            "coop",
            "Rural Connectivity Cooperative",
            kind="community",
            relationship_origin=(
                "introduced by a regional NGO after a community meeting; "
                "two years of relationship building preceded the study"
            ),
        )
    )
    ledger = EngagementLedger()
    ledger.record(
        EngagementEvent(
            0, ResearchStage.PROBLEM_FORMATION, "coop",
            EngagementKind.LED,
            "cooperative named backhaul cost as the problem to study",
        )
    )
    ledger.record(
        EngagementEvent(
            2, ResearchStage.DESIGN, "coop", EngagementKind.COLLABORATED,
            "co-designed the traffic-sharing rules", fed_back_into_design=True,
        )
    )
    ledger.record(
        EngagementEvent(
            5, ResearchStage.IMPLEMENTATION, "coop", EngagementKind.INVOLVED,
            "members installed and configured the meters",
        )
    )
    ledger.record(
        EngagementEvent(
            9, ResearchStage.EVALUATION, "coop", EngagementKind.COLLABORATED,
            "evaluation ran on the cooperative's live network",
            fed_back_into_design=True,
        )
    )
    ledger.record(
        EngagementEvent(
            12, ResearchStage.PUBLICATION, "coop", EngagementKind.CONSULTED,
            "cooperative reviewed the draft and the quotes used",
        )
    )
    project.ledger = ledger
    project.record_conversation(
        ConversationRecord(
            "conv-1", "coop", 1,
            summary="hallway conversation about seasonal demand",
            how_it_informed="added the harvest-season load scenario",
            quotes=("the network dies every harvest",),
            open_questions=("does the pattern hold in the north valley?",),
        )
    )
    project.record_conversation(
        ConversationRecord(
            "conv-2", "coop", 6,
            summary="maintenance volunteers on spare-part logistics",
            how_it_informed="reframed repair time as a logistics problem",
            quotes=("parts take a season to arrive",),
        )
    )
    project.positionality = [
        PositionalityStatement(
            identity="network engineers from the Global North",
            location="based in a university town far from the field site",
            affiliations="publicly funded lab, no vendor ties",
            community_ties="one author grew up in a neighboring cooperative",
            beliefs="decentralized infrastructure as a default good",
            relevance="shaped which costs we counted as burdens",
        )
    ]
    project.methods_used = {"interviews", "participatory design", "metering"}
    return project


def _strip_partnership_docs(project: ResearchProject) -> ResearchProject:
    stripped = build_reference_project()
    stripped.partners = {
        pid: Partner(p.partner_id, p.name, p.kind, relationship_origin="")
        for pid, p in stripped.partners.items()
    }
    stripped.ledger = EngagementLedger(
        [
            e
            for e in stripped.ledger.events()
            if e.stage
            not in (ResearchStage.PROBLEM_FORMATION, ResearchStage.EVALUATION)
        ]
    )
    return stripped


def run(
    spec: E11Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E11 (deterministic; the spec exists for uniformity)."""
    resolve_spec(E11Spec, spec, fast, seed)
    variants: dict[str, ResearchProject] = {"full": build_reference_project()}

    variants["no_partnership_docs"] = _strip_partnership_docs(
        build_reference_project()
    )

    no_conversations = build_reference_project()
    no_conversations.conversations = []
    variants["no_conversations"] = no_conversations

    no_positionality = build_reference_project()
    no_positionality.positionality = []
    variants["no_positionality"] = no_positionality

    table = Table(
        ["variant", "partnerships", "conversations", "positionality", "overall"],
        title="E11: audit scores across stripped variants",
    )
    audits = {}
    for name, project in variants.items():
        audit = audit_project(project)
        audits[name] = audit
        table.add_row(
            [
                name,
                audit.partnerships.score,
                audit.conversations.score,
                audit.positionality.score,
                audit.overall,
            ]
        )

    full = audits["full"]
    result = make_result("E11")
    result.tables = [table]
    result.checks = {
        "full_project_scores_high": full.overall >= 0.95,
        "partnership_strip_hits_partnerships": (
            audits["no_partnership_docs"].partnerships.score
            < full.partnerships.score - 0.3
        ),
        "partnership_strip_separable": (
            audits["no_partnership_docs"].conversations.score
            == full.conversations.score
            and audits["no_partnership_docs"].positionality.score
            == full.positionality.score
        ),
        "conversation_strip_hits_conversations": (
            audits["no_conversations"].conversations.score == 0.0
            and audits["no_conversations"].partnerships.score
            == full.partnerships.score
        ),
        "positionality_strip_hits_positionality": (
            audits["no_positionality"].positionality.score == 0.0
            and audits["no_positionality"].conversations.score
            == full.conversations.score
        ),
    }
    return result
