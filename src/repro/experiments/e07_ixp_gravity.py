"""E7: IXP gravity and tromboning (the Brazil / DE-CIX case study).

Claim (paper §3, Rosa [39]): "Despite more than 35 local IXPs, many
Brazilian ISPs still connect in Europe ... large IXPs such as DE-CIX in
Frankfurt have benefited from the limited public points of presence of
big tech in the Global South, attracting international traffic and
becoming giant Internet nodes."

Shape expected: with no Global-South content PoPs, the foreign
mega-exchange carries the large majority of IXP-crossing volume
(gravity ratio high) and no content is served domestically; both
reverse monotonically as PoP presence sweeps to 1.0, and domestic
tromboning falls.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, make_result
from repro.io.tables import Table
from repro.netsim.bgp.scenarios import run_gravity_study


def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E7; see module docstring for the expected shape."""
    records = run_gravity_study(
        n_eyeballs=18 if fast else 30,
        seed=seed,
    )
    table = Table(
        [
            "pop_presence", "content_domestic", "tromboned",
            "mega_ixp_vol", "local_ixp_vol", "mega_gravity",
        ],
        title="E7: locality vs content-PoP presence in the South region",
    )
    for record in records:
        table.add_row(
            [
                record["content_pop_presence"],
                record["content_served_domestically"],
                record["eyeball_tromboned_share"],
                record["mega_ixp_volume"],
                record["local_ixp_volume"],
                record["mega_gravity_ratio"],
            ]
        )

    first, last = records[0], records[-1]
    domestic_series = [r["content_served_domestically"] for r in records]
    gravity_series = [r["mega_gravity_ratio"] for r in records]
    result = make_result("E7")
    result.tables = [table]
    result.checks = {
        "no_pops_mega_majority": first["mega_gravity_ratio"] > 0.5,
        "no_pops_zero_domestic_content": (
            first["content_served_domestically"] == 0.0
        ),
        "domestic_content_monotone_up": all(
            a <= b + 1e-9 for a, b in zip(domestic_series, domestic_series[1:])
        ),
        "mega_gravity_monotone_down": all(
            a >= b - 1e-9 for a, b in zip(gravity_series, gravity_series[1:])
        ),
        "full_pops_cut_tromboning": (
            last["eyeball_tromboned_share"]
            < first["eyeball_tromboned_share"] - 0.2
        ),
    }
    return result
