"""E7: IXP gravity and tromboning (the Brazil / DE-CIX case study).

Claim (paper §3, Rosa [39]): "Despite more than 35 local IXPs, many
Brazilian ISPs still connect in Europe ... large IXPs such as DE-CIX in
Frankfurt have benefited from the limited public points of presence of
big tech in the Global South, attracting international traffic and
becoming giant Internet nodes."

Shape expected: with no Global-South content PoPs, the foreign
mega-exchange carries the large majority of IXP-crossing volume
(gravity ratio high) and no content is served domestically; both
reverse monotonically as PoP presence sweeps to 1.0, and domestic
tromboning falls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.netsim.bgp.scenarios import run_gravity_study


@dataclass(frozen=True)
class E7Spec(ExperimentSpec):
    """Knobs for E7: eyeball count and the PoP-presence sweep axis."""

    n_eyeballs: int = spec_field(18, minimum=2, maximum=500, help="eyeball ISPs in the South region")
    pop_presence_levels: tuple[float, ...] = spec_field(
        (0.0, 0.34, 0.67, 1.0),
        minimum=0.0,
        maximum=1.0,
        help="content-PoP presence levels swept (the IXP-density axis)",
    )

    EXPERIMENT_ID: ClassVar[str] = "E7"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_eyeballs": 30},
    }


def run(
    spec: E7Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E7; see module docstring for the expected shape."""
    spec = resolve_spec(E7Spec, spec, fast, seed)
    records = run_gravity_study(
        presence_levels=spec.pop_presence_levels,
        n_eyeballs=spec.n_eyeballs,
        seed=spec.seed,
    )
    table = Table(
        [
            "pop_presence", "content_domestic", "tromboned",
            "mega_ixp_vol", "local_ixp_vol", "mega_gravity",
        ],
        title="E7: locality vs content-PoP presence in the South region",
    )
    for record in records:
        table.add_row(
            [
                record["content_pop_presence"],
                record["content_served_domestically"],
                record["eyeball_tromboned_share"],
                record["mega_ixp_volume"],
                record["local_ixp_volume"],
                record["mega_gravity_ratio"],
            ]
        )

    first, last = records[0], records[-1]
    domestic_series = [r["content_served_domestically"] for r in records]
    gravity_series = [r["mega_gravity_ratio"] for r in records]
    result = make_result("E7")
    result.tables = [table]
    result.checks = {
        "no_pops_mega_majority": first["mega_gravity_ratio"] > 0.5,
        "no_pops_zero_domestic_content": (
            first["content_served_domestically"] == 0.0
        ),
        "domestic_content_monotone_up": all(
            a <= b + 1e-9 for a, b in zip(domestic_series, domestic_series[1:])
        ),
        "mega_gravity_monotone_down": all(
            a >= b - 1e-9 for a, b in zip(gravity_series, gravity_series[1:])
        ),
        "full_pops_cut_tromboning": (
            last["eyeball_tromboned_share"]
            < first["eyeball_tromboned_share"] - 0.2
        ),
    }
    return result
