"""E3: research-agenda concentration.

Claim (paper §1): "the concerns that enter our research pipeline often
mirror the operational realities of dominant players" — hyperscaler-
adjacent topics dominate networking venues while community-network,
accessibility, and policy topics are a thin tail; and §6.3.1's
observation that networking "continues to largely focus on hyperscaler
datacenter operators".

Shape expected: hyperscaler-topic share several times the community-
topic share at networking venues (and an absolute majority of papers)
with the reverse at HCI/STS venues; hyperscaler-affiliated authorship
share materially higher at networking venues.  Topic HHI/diversity are
reported descriptively — the claim is about *whose agenda* dominates,
not about how many technical topics the agenda spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.bibliometrics.demographics import room_report
from repro.bibliometrics.metrics import hhi, shannon_diversity
from repro.experiments._corpus import (
    corpus_config_from_params,
    resolve_backend,
    shared_aggregates_from_config,
    shared_columnar_corpus_from_config,
    shared_corpus_from_config,
)
from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import CorpusParams, ExperimentSpec, resolve_spec
from repro.io.tables import Table

HYPERSCALER_TOPICS = frozenset({"datacenter", "transport", "routing"})
COMMUNITY_TOPICS = frozenset({"community-networks", "accessibility", "policy"})


@dataclass(frozen=True)
class E3Spec(ExperimentSpec):
    """Knobs for E3: the shared corpus shape."""

    corpus: CorpusParams = CorpusParams()

    EXPERIMENT_ID: ClassVar[str] = "E3"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"corpus": CorpusParams(**CorpusParams.FULL)},
    }


def run(
    spec: E3Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E3; see module docstring for the expected shape."""
    spec = resolve_spec(E3Spec, spec, fast, seed)
    config = corpus_config_from_params(spec.seed, spec.corpus)
    columnar = resolve_backend(spec.corpus) == "columnar"

    stats: dict[str, dict] = {}
    if columnar:
        corpus = shared_columnar_corpus_from_config(
            config, spec.corpus.shard_size
        )
        aggregates = shared_aggregates_from_config(
            config, spec.corpus.shard_size
        )
        for venue_id, topics in aggregates.venue_topics.items():
            kind = aggregates.venue_kinds[venue_id]
            bucket = stats.setdefault(
                kind,
                {"papers": 0, "hyper_topics": 0, "community_topics": 0,
                 "topic_counts": {}, "author_slots": 0, "hyper_authors": 0},
            )
            for topic, papers in topics.items():
                bucket["papers"] += papers
                bucket["topic_counts"][topic] = (
                    bucket["topic_counts"].get(topic, 0) + papers
                )
                if topic in HYPERSCALER_TOPICS:
                    bucket["hyper_topics"] += papers
                if topic in COMMUNITY_TOPICS:
                    bucket["community_topics"] += papers
            slots = aggregates.sector_slots.get(venue_id, {})
            bucket["author_slots"] += sum(slots.values())
            bucket["hyper_authors"] += slots.get("hyperscaler", 0)
    else:
        corpus, _ = shared_corpus_from_config(config)
        for paper in corpus:
            kind = corpus.venue(paper.venue_id).kind
            bucket = stats.setdefault(
                kind,
                {"papers": 0, "hyper_topics": 0, "community_topics": 0,
                 "topic_counts": {}, "author_slots": 0, "hyper_authors": 0},
            )
            bucket["papers"] += 1
            bucket["topic_counts"][paper.topic] = (
                bucket["topic_counts"].get(paper.topic, 0) + 1
            )
            if paper.topic in HYPERSCALER_TOPICS:
                bucket["hyper_topics"] += 1
            if paper.topic in COMMUNITY_TOPICS:
                bucket["community_topics"] += 1
            for author_id in paper.author_ids:
                bucket["author_slots"] += 1
                if corpus.author(author_id).sector == "hyperscaler":
                    bucket["hyper_authors"] += 1

    table = Table(
        [
            "venue_kind", "papers", "hyper_topic_share", "community_topic_share",
            "topic_hhi", "topic_diversity", "hyperscaler_author_share",
        ],
        title="E3: agenda concentration by venue kind",
    )
    rows = {}
    for kind in sorted(stats):
        bucket = stats[kind]
        # Topic-sorted value order: hhi/shannon_diversity sum floats in
        # input order, so both backends must feed them the same
        # sequence, not merely the same multiset.
        counts = [
            bucket["topic_counts"][topic]
            for topic in sorted(bucket["topic_counts"])
        ]
        row = {
            "hyper_share": bucket["hyper_topics"] / bucket["papers"],
            "community_share": bucket["community_topics"] / bucket["papers"],
            "hhi": hhi(counts),
            "diversity": shannon_diversity(counts, normalized=True),
            "hyper_authors": (
                bucket["hyper_authors"] / bucket["author_slots"]
                if bucket["author_slots"] else 0.0
            ),
        }
        rows[kind] = row
        table.add_row(
            [
                kind,
                bucket["papers"],
                row["hyper_share"],
                row["community_share"],
                row["hhi"],
                row["diversity"],
                row["hyper_authors"],
            ]
        )

    # Who is in the room: demographics of a flagship venue per kind.
    flagship = {"networking": "sigcomm-like", "hci": "chi-like",
                "sts": "sts-journal-like"}
    room_table = Table(
        [
            "venue", "newcomer_share", "hyperscaler_slots",
            "global_south_slots", "gatekeeping",
        ],
        title="E3b: who is in the room (flagship venue per kind)",
    )
    rooms = {}
    for kind, venue_id in sorted(flagship.items()):
        room = room_report(corpus, venue_id)
        rooms[kind] = room
        room_table.add_row(
            [
                venue_id,
                room["mean_newcomer_share"],
                room["hyperscaler_slot_share"],
                room["global_south_slot_share"],
                room["gatekeeping_index"],
            ]
        )

    networking = rows.get("networking", {})
    hci = rows.get("hci", {})
    result = make_result("E3")
    result.tables = [table, room_table]
    result.checks = {
        "networking_hyper_dominates_community_3x": (
            networking.get("hyper_share", 0.0)
            >= 3.0 * max(networking.get("community_share", 0.0), 1e-9)
        ),
        "hci_community_dominates_hyper": (
            hci.get("community_share", 0.0) > hci.get("hyper_share", 0.0)
        ),
        # The generator's topic weights put the hyperscaler share at
        # ~0.51 in expectation; test "roughly half the agenda" with
        # margin for sampling noise rather than a knife-edge majority.
        "networking_hyper_near_majority": (
            networking.get("hyper_share", 0.0) > 0.45
        ),
        "networking_more_hyperscaler_authors": (
            networking.get("hyper_authors", 0.0)
            > 2.0 * max(hci.get("hyper_authors", 0.0), 1e-9)
        ),
        "networking_room_less_global_south": (
            rooms["networking"]["global_south_slot_share"]
            < rooms["hci"]["global_south_slot_share"]
        ),
    }
    return result
