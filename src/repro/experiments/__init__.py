"""The experiment suite (E1-E12).

The paper has no tables or figures — it is a position paper — so
DESIGN.md defines a synthetic evaluation suite mapping each of the
paper's claims and case studies to a quantitative, seed-deterministic
experiment.  Each module here is one experiment's runner; the
``benchmarks/`` directory wraps them in pytest-benchmark harnesses and
EXPERIMENTS.md records their expected shapes.

Use :func:`repro.experiments.registry.get_experiment` /
:func:`repro.experiments.registry.all_experiments` to enumerate and run
them programmatically; each runner accepts ``seed`` and ``fast``
(reduced problem sizes for CI) and returns an
:class:`~repro.experiments.registry.ExperimentResult`.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_all,
)

__all__ = ["ExperimentResult", "all_experiments", "get_experiment", "run_all"]
