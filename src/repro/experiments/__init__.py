"""The experiment suite (E1-E13).

The paper has no tables or figures — it is a position paper — so
DESIGN.md defines a synthetic evaluation suite mapping each of the
paper's claims and case studies to a quantitative, seed-deterministic
experiment.  Each module here is one experiment's runner; the
``benchmarks/`` directory wraps them in pytest-benchmark harnesses and
EXPERIMENTS.md records their expected shapes.

Use :func:`repro.experiments.registry.get_experiment` /
:func:`repro.experiments.registry.all_experiments` to enumerate and run
them programmatically.  Each experiment is configured by a typed,
frozen :class:`~repro.experiments.spec.ExperimentSpec` subclass
(``registry.spec_class(id)`` / ``registry.make_spec(id, ...)``) whose
``fast``/``full`` presets reproduce the legacy ``run(seed, fast)``
operating points exactly; the legacy signature still works and returns
the same :class:`~repro.experiments.registry.ExperimentResult`.
"""

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    make_spec,
    run_all,
    spec_class,
)
from repro.experiments.spec import CorpusParams, ExperimentSpec

__all__ = [
    "CorpusParams",
    "ExperimentResult",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
    "make_spec",
    "run_all",
    "spec_class",
]
