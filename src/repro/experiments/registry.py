"""Experiment registry and result type.

The registry is also the suite's single instrumentation point: every
runner handed out by :func:`get_experiment` is wrapped in a stage span
(``e07.run`` for E7, and so on) against the process-wide tracer — one
decorator here instead of thirteen hand edits in the experiment
modules.  With the default :class:`repro.obs.tracing.NullTracer`
installed the wrapper costs one attribute lookup per run.
"""

from __future__ import annotations

import functools
import importlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CheckFailure, UnknownExperimentError
from repro.io.tables import Table
from repro.obs.tracing import current_tracer

#: Experiment id -> (module name, title, paper claim).
_EXPERIMENTS: dict[str, tuple[str, str, str]] = {
    "E1": (
        "repro.experiments.e01_method_adoption",
        "Human-method adoption by venue",
        "Human methods are peripheral in networking venues vs HCI/STS (§1, §6.4)",
    ),
    "E2": (
        "repro.experiments.e02_positionality_prevalence",
        "Positionality-statement prevalence",
        "Positionality statements are rare in networking, present in HCI/STS (§4)",
    ),
    "E3": (
        "repro.experiments.e03_agenda_concentration",
        "Research-agenda concentration",
        "Agendas mirror large moneyed interests (§1, §6.3.1)",
    ),
    "E4": (
        "repro.experiments.e04_coding_reliability",
        "Qualitative-coding reliability",
        "Formal coding is reliable and chance-correction matters (§5.2 fn.1)",
    ),
    "E5": (
        "repro.experiments.e05_saturation",
        "Saturation and patchwork ethnography",
        "Patchwork engagement approaches full-immersion coverage (§3)",
    ),
    "E6": (
        "repro.experiments.e06_telmex_evasion",
        "Mandatory-peering evasion",
        "An incumbent can satisfy an IXP mandate via ASN games (§3, [38])",
    ),
    "E7": (
        "repro.experiments.e07_ixp_gravity",
        "IXP gravity and tromboning",
        "Sparse Global-South PoPs push traffic through foreign mega-IXPs (§3, [39])",
    ),
    "E8": (
        "repro.experiments.e08_par_deployment",
        "PAR vs top-down deployment",
        "Participatory operation improves community-network outcomes (§2, §4)",
    ),
    "E9": (
        "repro.experiments.e09_cpr_congestion",
        "Common-pool congestion management",
        "Community CPR management beats unmanaged sharing (§4, [28])",
    ),
    "E10": (
        "repro.experiments.e10_reachability_bias",
        "Reachability bias in problem surfacing",
        "Problems surface from the most easily reachable stakeholders (§1)",
    ),
    "E11": (
        "repro.experiments.e11_recommendations_audit",
        "Recommendations audit sensitivity",
        "Section-5 practices are auditable and separable (§5)",
    ),
    "E12": (
        "repro.experiments.e12_scale_vs_depth",
        "Scale vs depth",
        "Few actors carry most of the system; small-N engagement covers much (§6.2.1)",
    ),
    "E13": (
        "repro.experiments.e13_congestion_collapse",
        "Congestion collapse counterfactual",
        "Deployment-bred AIMD (Tahoe/Reno) prevents the collapse open-loop "
        "design causes (§2)",
    ),
}


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes:
        experiment_id: An id from :func:`all_experiments` ("E1".."E13"
            today; the registry, not this docstring, is the source of
            truth for the count).
        title: Human-readable title.
        claim: The paper claim being tested.
        tables: Result tables (rendered into bench output and
            EXPERIMENTS.md).
        checks: Named boolean shape-checks — the "expected shape" from
            DESIGN.md evaluated on this run's numbers.
    """

    experiment_id: str
    title: str
    claim: str
    tables: list[Table] = field(default_factory=list)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def shape_holds(self) -> bool:
        """True when every shape-check passed."""
        return all(self.checks.values())

    def render(self) -> str:
        """Render tables and checks as plain text."""
        parts = [f"{self.experiment_id}: {self.title}", f"claim: {self.claim}"]
        for table in self.tables:
            parts.append(table.render())
        for name, ok in sorted(self.checks.items()):
            parts.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        return "\n\n".join(parts)

    def require(self) -> None:
        """Raise :class:`repro.errors.CheckFailure` if any check failed."""
        failed = tuple(name for name, ok in sorted(self.checks.items()) if not ok)
        if failed:
            raise CheckFailure(
                f"shape checks failed: {', '.join(failed)}",
                failed_checks=failed,
                experiment_id=self.experiment_id,
                stage="check",
            )

    def to_payload(self) -> dict:
        """The result as JSON-safe data (inverse of :meth:`from_payload`).

        This is what the sweep engine stores in the artifact cache and
        writes to per-point ``record.json`` files.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "tables": [table.to_payload() for table in self.tables],
            "checks": dict(self.checks),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> ExperimentResult:
        """Rebuild a result from :meth:`to_payload` output."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload.get("title", ""),
            claim=payload.get("claim", ""),
            tables=[Table.from_payload(t) for t in payload.get("tables", [])],
            checks={k: bool(v) for k, v in payload.get("checks", {}).items()},
        )


def all_experiments() -> list[str]:
    """Experiment ids in suite order."""
    return sorted(_EXPERIMENTS, key=lambda k: int(k[1:]))


def _lookup(experiment_id: str) -> tuple[str, str, str]:
    """The registry row for ``experiment_id``, validated."""
    if experiment_id not in _EXPERIMENTS:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; known: {all_experiments()}"
        )
    return _EXPERIMENTS[experiment_id]


def _stage_name(module_name: str) -> str:
    """The stage prefix for a module (``...e07_ixp_gravity`` -> ``e07``)."""
    return module_name.rsplit(".", 1)[-1].split("_", 1)[0]


def _traced(
    experiment_id: str,
    stage: str,
    run_fn: Callable[..., ExperimentResult],
    spec_cls: type | None = None,
) -> Callable[..., ExperimentResult]:
    """Wrap an experiment runner in a ``<stage>.run`` tracing span.

    The span is opened against :func:`repro.obs.tracing.current_tracer`
    at call time, so one ``use_tracer`` block traces the whole suite —
    including runs dispatched from worker threads and benchmarks.  When
    the experiment has a spec class, every calling convention is
    resolved to a spec *here* — the span then carries the spec's seed
    and ``config_hash`` and the experiment body only ever sees a spec.
    """
    from repro.experiments.spec import resolve_spec

    @functools.wraps(run_fn)
    def traced_run(*args, **kwargs) -> ExperimentResult:
        if spec_cls is not None:
            spec = resolve_spec(
                spec_cls,
                args[0] if args else kwargs.get("spec"),
                args[1] if len(args) > 1 else kwargs.get("fast"),
                kwargs.get("seed"),
            )
            with current_tracer().span(
                f"{stage}.run",
                experiment_id=experiment_id,
                stage="run",
                seed=spec.seed,
                config_hash=spec.config_hash(),
            ):
                return run_fn(spec)
        with current_tracer().span(
            f"{stage}.run",
            experiment_id=experiment_id,
            stage="run",
            seed=kwargs.get("seed"),
        ):
            return run_fn(*args, **kwargs)

    return traced_run


def spec_class(experiment_id: str) -> type:
    """The :class:`repro.experiments.spec.ExperimentSpec` subclass for an id.

    By convention the class is named ``<id>Spec`` (``E7Spec``) and lives
    in the experiment's module.
    """
    module_name, _, _ = _lookup(experiment_id)
    module = importlib.import_module(module_name)
    cls = getattr(module, f"{experiment_id}Spec", None)
    if cls is None:
        raise UnknownExperimentError(
            f"experiment {experiment_id!r} defines no {experiment_id}Spec class"
        )
    return cls


def make_spec(
    experiment_id: str,
    preset: str = "fast",
    seed: int = 0,
    overrides: dict | None = None,
):
    """Build the named preset spec for ``experiment_id`` with overrides.

    ``overrides`` maps (possibly dotted) field paths to values — raw
    strings from the CLI are coerced to the declared field types; see
    :func:`repro.experiments.spec.apply_overrides`.
    """
    from repro.experiments.spec import apply_overrides

    spec = spec_class(experiment_id).preset(preset, seed=seed)
    if overrides:
        spec = apply_overrides(spec, overrides)
    return spec


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """The runner for ``experiment_id``.

    The returned callable accepts a spec (``run(spec)``) or the legacy
    signature (``run(seed=0, fast=True)``, fingerprint-identical to the
    matching preset), and is wrapped in a tracing stage span (see
    :func:`_traced`).
    """
    module_name, _, _ = _lookup(experiment_id)
    module = importlib.import_module(module_name)
    cls = getattr(module, f"{experiment_id}Spec", None)
    return _traced(experiment_id, _stage_name(module_name), module.run, cls)


def describe(experiment_id: str) -> tuple[str, str]:
    """``(title, claim)`` for ``experiment_id``."""
    _, title, claim = _lookup(experiment_id)
    return title, claim


def describe_table() -> Table:
    """The whole registry as a :class:`repro.io.tables.Table`.

    ``repro experiments --list`` prints this table; it shares the
    renderer with ``repro obs report`` and the benchmarks instead of
    hand-rolling its own column formatting.
    """
    table = Table(["id", "title", "claim"])
    for experiment_id in all_experiments():
        title, claim = describe(experiment_id)
        table.add_row([experiment_id, title, claim])
    return table


def make_result(experiment_id: str) -> ExperimentResult:
    """A blank :class:`ExperimentResult` with registry metadata filled in."""
    title, claim = describe(experiment_id)
    return ExperimentResult(experiment_id=experiment_id, title=title, claim=claim)


def run_all(seed: int = 0, fast: bool = True) -> list[ExperimentResult]:
    """Run every experiment; returns results in suite order.

    Strict mode: the first crash propagates.  For per-experiment
    isolation, retries, deadlines, and checkpoint/resume use
    :class:`repro.runtime.SuiteRunner` directly.
    """
    # Imported lazily: repro.runtime depends on this module.
    from repro.runtime.runner import SuiteRunner

    report = SuiteRunner(keep_going=False).run_all(seed=seed, fast=fast)
    return [record.result for record in report]
