"""E10: reachability bias in problem surfacing.

Claim (paper §1): "Existing agendas tend to reflect the views of those
who are most easily reachable ... Entire classes of challenges — those
shaped by economic precarity, infrastructural instability, or
linguistic and geopolitical marginality — are rendered invisible,
because the people experiencing them are not in the room."

Operationalization: a stakeholder population stratified by reachability,
each stratum experiencing its own catalog of problems; three recruiters
(convenience, quota, PAR-style chain referral) sample it.  The outcome
is the *voice share* of low-reachability problem classes — the fraction
of surfaced problem-reports concerning them, against the population's
own fraction.  (Binary coverage saturates once a couple of marginal
members are recruited; what the paper claims is muted, not absent,
voice.)

Shape expected: convenience sampling mutes low-reach problems to well
under their population voice share and over-represents hyperscaler
engineers several-fold; chain referral restores voice to near-faithful
at a similar contact budget; quota restores it too but at a much larger
attempt cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.surveys.respondents import default_population
from repro.surveys.sampling import (
    chain_referral_sample,
    convenience_sample,
    coverage_report,
    quota_sample,
)


@dataclass(frozen=True)
class E10Spec(ExperimentSpec):
    """Knobs for E10: population size and recruiting target."""

    population_size: int = spec_field(600, minimum=50, maximum=100_000, help="stakeholder population size")
    target: int = spec_field(80, minimum=10, maximum=10_000, help="recruits per sampling scheme")

    EXPERIMENT_ID: ClassVar[str] = "E10"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"population_size": 2000, "target": 200},
    }


def run(
    spec: E10Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E10; see module docstring for the expected shape."""
    spec = resolve_spec(E10Spec, spec, fast, seed)
    seed = spec.seed
    population = default_population(size=spec.population_size, seed=seed)
    target = spec.target
    per_stratum = max(5, target // len(population.strata()))

    samples = {
        "convenience": convenience_sample(population, target, seed=seed),
        "quota": quota_sample(population, per_stratum, seed=seed),
        "chain_referral": chain_referral_sample(population, target, seed=seed),
    }

    table = Table(
        [
            "scheme", "recruits", "attempts", "problem_coverage",
            "low_reach_voice", "voice_repr", "hyperscaler_repr",
            "rural_user_repr",
        ],
        title="E10: sampling schemes vs low-reach problem voice",
    )
    coverage = {}
    for scheme, report in samples.items():
        cov = coverage_report(population, report)
        coverage[scheme] = cov
        representation = cov["stratum_representation"]
        table.add_row(
            [
                scheme,
                report.n_sampled,
                report.attempts,
                cov["problem_coverage"],
                cov["low_reach_voice_share"],
                cov["voice_representation"],
                representation.get("hyperscaler-engineer", 0.0),
                representation.get("rural-user", 0.0),
            ]
        )
    baseline = Table(["metric", "value"], title="E10b: population baseline")
    baseline.add_row(
        [
            "population_low_reach_voice_share",
            coverage["convenience"]["population_low_reach_voice_share"],
        ]
    )

    # Can post-stratification weighting repair the convenience sample?
    # Only for strata it contains at all — the unrepresentable share is
    # what no weighting scheme recovers (repro.surveys.weighting).
    from repro.surveys.weighting import coverage_deficit

    population_counts: dict[str, int] = {}
    for member in population:
        population_counts[member.stratum] = (
            population_counts.get(member.stratum, 0) + 1
        )
    n_pop = len(population)
    population_shares = {
        stratum: count / n_pop for stratum, count in population_counts.items()
    }
    weighting = Table(
        ["scheme", "unseen_strata", "unrepresentable_share"],
        title="E10c: what post-stratification weighting cannot repair",
    )
    deficits = {}
    for scheme, report in samples.items():
        strata = [population.get(sid).stratum for sid in report.sampled_ids]
        deficit = coverage_deficit(strata, population_shares)
        deficits[scheme] = deficit
        weighting.add_row(
            [
                scheme,
                len(deficit["unseen_strata"]),
                deficit["unrepresentable_share"],
            ]
        )

    convenience = coverage["convenience"]
    referral = coverage["chain_referral"]
    quota = coverage["quota"]
    conv_repr = convenience["stratum_representation"]
    result = make_result("E10")
    result.tables = [table, baseline, weighting]
    result.checks = {
        "convenience_mutes_low_reach_voice": (
            convenience["voice_representation"] < 0.6
        ),
        "referral_restores_voice": (
            referral["voice_representation"]
            > convenience["voice_representation"] + 0.2
        ),
        "quota_restores_voice": (
            quota["voice_representation"]
            > convenience["voice_representation"] + 0.2
        ),
        "convenience_overrepresents_reachable": (
            conv_repr.get("hyperscaler-engineer", 0.0)
            > 3.0 * max(conv_repr.get("rural-user", 0.0), 1e-9)
        ),
        "quota_costs_more_attempts": (
            samples["quota"].attempts > samples["chain_referral"].attempts
        ),
    }
    return result
