"""Typed, validated experiment specs.

Every experiment declares a frozen dataclass subclassing
:class:`ExperimentSpec` that names every knob the experiment reads —
seed, sizes, sweep axes — with per-field metadata (ranges, choices,
help text) attached via :func:`spec_field`.  A spec is the *complete*
description of one experiment run:

- ``Spec.preset("fast")`` / ``Spec.preset("full")`` reproduce the two
  legacy ``run(seed, fast)`` operating points exactly;
- ``spec.canonical_json()`` is a stable, sorted serialization, and
  ``spec.config_hash()`` a sha256 over it — the identity the runtime
  uses for checkpoints, artifact-cache keys, and sweep dedup;
- ``to_dict()`` / ``from_dict()`` roundtrip through plain JSON types,
  so specs travel across the fork pool and crash-requeue paths as
  picklable payloads.

Validation happens at construction (``__post_init__``): out-of-range
values, bad choices, and wrong types raise
:class:`repro.errors.SpecError` with a one-line, CLI-ready message.

The legacy ``run(seed=0, fast=True)`` signature is kept alive by
:func:`resolve_spec`, which every experiment's ``run`` calls first; the
shim maps legacy arguments onto the matching preset so old callers are
fingerprint-identical to ``run(Spec.preset(...))``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, get_type_hints

from repro.errors import SpecError

#: Bump when the canonical serialization itself changes meaning, so old
#: artifact-cache entries and checkpoints are orphaned rather than
#: silently reused under a new interpretation.
SPEC_SCHEMA_VERSION = 1

#: Metadata key under which spec_field() stores its constraint dict.
_META_KEY = "repro.spec"


def spec_field(
    default: Any,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
    choices: tuple | None = None,
    help: str = "",
    identity: bool = True,
) -> Any:
    """A dataclass field carrying range/choice constraints.

    ``choices`` on a tuple-typed field constrains each *element* of the
    value; on a scalar field it constrains the value itself.  ``minimum``
    and ``maximum`` are inclusive bounds, applied element-wise to tuple
    values the same way.

    ``identity=False`` marks an *execution* knob: the field still
    validates, serializes, and survives :meth:`_SpecBase.from_dict`
    roundtrips (it must cross the fork pool intact), but it is excluded
    from :meth:`ExperimentSpec.canonical_json` and therefore from
    ``config_hash()``.  Reserve it for fields that change *how* a result
    is computed, never *what* the result is — the corpus ``backend``
    choice is the canonical example, and the cross-backend
    result-fingerprint equality tests are what license the exclusion.
    """
    meta = {
        "minimum": minimum,
        "maximum": maximum,
        "choices": tuple(choices) if choices is not None else None,
        "help": help,
        "identity": identity,
    }
    if isinstance(default, (list, dict, set)):
        raise TypeError(
            f"spec_field default must be immutable, got {type(default).__name__}"
        )
    return dataclasses.field(default=default, metadata={_META_KEY: meta})


def _constraints(f: dataclasses.Field) -> dict:
    return f.metadata.get(_META_KEY, {})


def _type_name(tp: Any) -> str:
    return getattr(tp, "__name__", str(tp))


@dataclass(frozen=True)
class _SpecBase:
    """Shared machinery for :class:`ExperimentSpec` and nested param blocks."""

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ---------------------------------------------------

    @classmethod
    def _hints(cls) -> dict[str, Any]:
        # Annotations are strings repo-wide (`from __future__ import
        # annotations`); resolve them once per class.
        cached = cls.__dict__.get("_resolved_hints")
        if cached is None:
            cached = get_type_hints(cls)
            cls._resolved_hints = cached
        return cached

    def validate(self) -> None:
        """Raise :class:`SpecError` on any type/range/choice violation."""
        hints = self._hints()
        for f in fields(self):
            value = getattr(self, f.name)
            self._validate_field(f, hints[f.name], value)

    def _validate_field(self, f: dataclasses.Field, hint: Any, value: Any) -> None:
        cls_name = type(self).__name__
        if isinstance(hint, type) and issubclass(hint, _SpecBase):
            if not isinstance(value, hint):
                raise SpecError(
                    f"{cls_name}.{f.name} must be a {hint.__name__}, "
                    f"got {_type_name(type(value))}"
                )
            return
        if hint is tuple or getattr(hint, "__origin__", None) is tuple:
            if not isinstance(value, tuple):
                raise SpecError(
                    f"{cls_name}.{f.name} must be a tuple, "
                    f"got {_type_name(type(value))}"
                )
            if not value:
                raise SpecError(f"{cls_name}.{f.name} must not be empty")
            elem_types = ()
            args = getattr(hint, "__args__", ())
            if args:
                elem_types = tuple(a for a in args if a is not Ellipsis)
            for item in value:
                if elem_types and not isinstance(item, elem_types):
                    # bool is an int subclass; reject it for numeric tuples.
                    raise SpecError(
                        f"{cls_name}.{f.name} elements must be "
                        f"{'/'.join(_type_name(t) for t in elem_types)}, "
                        f"got {item!r}"
                    )
                self._check_constraints(f, item)
            return
        if hint is bool:
            if not isinstance(value, bool):
                raise SpecError(
                    f"{cls_name}.{f.name} must be a bool, got {value!r}"
                )
        elif hint is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(
                    f"{cls_name}.{f.name} must be an int, got {value!r}"
                )
        elif hint is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(
                    f"{cls_name}.{f.name} must be a number, got {value!r}"
                )
        elif hint is str:
            if not isinstance(value, str):
                raise SpecError(
                    f"{cls_name}.{f.name} must be a string, got {value!r}"
                )
        self._check_constraints(f, value)

    def _check_constraints(self, f: dataclasses.Field, value: Any) -> None:
        meta = _constraints(f)
        if not meta:
            return
        cls_name = type(self).__name__
        choices = meta.get("choices")
        if choices is not None and value not in choices:
            raise SpecError(
                f"{cls_name}.{f.name}: {value!r} is not one of "
                f"{', '.join(repr(c) for c in choices)}"
            )
        minimum = meta.get("minimum")
        if minimum is not None and value < minimum:
            raise SpecError(
                f"{cls_name}.{f.name} must be >= {minimum}, got {value!r}"
            )
        maximum = meta.get("maximum")
        if maximum is not None and value > maximum:
            raise SpecError(
                f"{cls_name}.{f.name} must be <= {maximum}, got {value!r}"
            )

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict:
        """The spec as plain JSON types (tuples become lists)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, _SpecBase):
                out[f.name] = value.to_dict()
            elif isinstance(value, tuple):
                out[f.name] = list(value)
            else:
                out[f.name] = value
        return out

    def identity_dict(self) -> dict:
        """Like :meth:`to_dict`, but only identity-bearing fields.

        Fields declared ``spec_field(..., identity=False)`` are execution
        knobs (e.g. ``CorpusParams.backend``): they must not perturb
        ``config_hash``, or every memoized sweep/serve result would split
        per backend even though the results are equal by construction.
        Nested parameter blocks recurse, so a block whose every field is
        non-identity collapses to an empty object rather than vanishing
        (the key set stays stable as flags change).
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            if not _constraints(f).get("identity", True):
                continue
            value = getattr(self, f.name)
            if isinstance(value, _SpecBase):
                out[f.name] = value.identity_dict()
            elif isinstance(value, tuple):
                out[f.name] = list(value)
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict):
        """Rebuild a spec from :meth:`to_dict` output (validates)."""
        if not isinstance(data, dict):
            raise SpecError(f"{cls.__name__}.from_dict needs a dict, got {data!r}")
        hints = cls._hints()
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"{cls.__name__} has no field {unknown[0]!r}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        kwargs: dict[str, Any] = {}
        for f in fields(cls):
            if f.name not in data:
                continue
            hint = hints[f.name]
            value = data[f.name]
            if isinstance(hint, type) and issubclass(hint, _SpecBase):
                kwargs[f.name] = hint.from_dict(value)
            elif (
                hint is tuple or getattr(hint, "__origin__", None) is tuple
            ) and isinstance(value, list):
                kwargs[f.name] = tuple(value)
            else:
                kwargs[f.name] = value
        return cls(**kwargs)

    def replace(self, **changes):
        """A new, re-validated spec with ``changes`` applied."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise SpecError(
                f"{type(self).__name__}: {exc}; valid fields: "
                f"{', '.join(sorted(f.name for f in fields(self)))}"
            ) from exc


@dataclass(frozen=True)
class CorpusParams(_SpecBase):
    """Shape of the shared synthetic paper corpus (E1/E2/E3/E12).

    The defaults are the ``fast`` corpus; the ``full`` preset of each
    corpus-backed experiment widens ``start_year`` to 2000 and doubles
    the author pool, matching the legacy ``fast=False`` path exactly.
    """

    start_year: int = spec_field(2016, minimum=1990, maximum=2025, help="first publication year")
    end_year: int = spec_field(2025, minimum=1990, maximum=2030, help="last publication year")
    authors_per_venue_pool: int = spec_field(60, minimum=10, maximum=500, help="author pool size per venue")
    venue_scale: float = spec_field(1.0, minimum=0.1, maximum=100.0, help="multiplier on every venue's papers per year")
    # Execution knobs (identity=False): they select the corpus
    # *representation*, never its content, so they must not split
    # config_hash identities — the per-experiment classic-vs-columnar
    # result-fingerprint equality tests enforce the "never".
    backend: str = spec_field(
        "auto", choices=("classic", "columnar", "auto"), identity=False,
        help="corpus engine: classic dataclasses, columnar shards, or auto by size",
    )
    shard_size: int = spec_field(
        10_000, minimum=100, maximum=1_000_000, identity=False,
        help="papers per columnar shard (columnar/auto backends only)",
    )

    def validate(self) -> None:
        super().validate()
        if self.end_year < self.start_year:
            raise SpecError(
                f"CorpusParams.end_year ({self.end_year}) must be >= "
                f"start_year ({self.start_year})"
            )

    #: The two legacy corpus shapes.
    FAST: ClassVar[dict] = {}
    FULL: ClassVar[dict] = {"start_year": 2000, "authors_per_venue_pool": 120}


@dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """Base class for per-experiment specs.

    Subclasses set :attr:`EXPERIMENT_ID` and :attr:`PRESETS` and add
    their knobs as :func:`spec_field` fields.  Field *defaults are the
    ``fast`` operating point*; the ``full`` preset overrides only what
    differs, so ``PRESETS["fast"]`` is usually empty.
    """

    seed: int = spec_field(0, minimum=0, help="RNG seed")

    #: Experiment id this spec belongs to ("E7" ...).
    EXPERIMENT_ID: ClassVar[str] = ""
    #: preset name -> field overrides relative to the class defaults.
    PRESETS: ClassVar[dict[str, dict]] = {"fast": {}, "full": {}}

    @classmethod
    def preset_names(cls) -> list[str]:
        return sorted(cls.PRESETS)

    @classmethod
    def preset(cls, name: str = "fast", seed: int = 0, **overrides):
        """Build the named preset at ``seed``, with optional overrides."""
        if name not in cls.PRESETS:
            raise SpecError(
                f"{cls.__name__} has no preset {name!r}; "
                f"valid presets: {', '.join(cls.preset_names())}"
            )
        kwargs = dict(cls.PRESETS[name])
        kwargs["seed"] = seed
        kwargs.update(overrides)
        spec = cls(**kwargs)
        object.__setattr__(spec, "_origin_preset", name)
        return spec

    @property
    def origin_preset(self) -> str | None:
        """Which preset built this spec, when known (not part of identity)."""
        return getattr(self, "_origin_preset", None)

    # -- identity -----------------------------------------------------

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace drift.

        Includes the experiment id and the spec schema version, so two
        different experiments with coincidentally equal fields — or the
        same fields under a future re-interpretation — never share an
        identity.  Serializes :meth:`identity_dict`, not :meth:`to_dict`:
        execution-only knobs (``corpus.backend``, ``corpus.shard_size``)
        are deliberately invisible here, so a columnar run shares
        checkpoints, artifact-cache entries, and sweep/serve memoization
        keys with the classic run it must equal.
        """
        payload = {
            "experiment": self.EXPERIMENT_ID,
            "spec": self.identity_dict(),
            "version": SPEC_SCHEMA_VERSION,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """sha256 hex digest of :meth:`canonical_json`."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def describe_fields(self) -> list[dict]:
        """Field name/type/default/constraints rows, for ``--help`` style output."""
        hints = self._hints()
        rows = []
        for f in fields(self):
            meta = _constraints(f)
            rows.append(
                {
                    "field": f.name,
                    "type": _type_name(hints[f.name]),
                    "value": getattr(self, f.name),
                    "help": meta.get("help", ""),
                    "choices": meta.get("choices"),
                    "minimum": meta.get("minimum"),
                    "maximum": meta.get("maximum"),
                }
            )
        return rows


# ---------------------------------------------------------------------------
# Legacy-signature shim


def resolve_spec(
    spec_cls: type[ExperimentSpec],
    spec: Any = None,
    fast: bool | None = None,
    seed: Any = None,
) -> ExperimentSpec:
    """Map every supported ``run(...)`` calling convention onto a spec.

    Accepted shapes (all fingerprint-identical to the matching preset):

    - ``run(spec)`` — an :class:`ExperimentSpec` instance, passed through;
    - ``run({...})`` — a :meth:`to_dict` payload, deserialized;
    - ``run(3)`` / ``run(3, True)`` — legacy positional ``(seed, fast)``;
    - ``run(seed=3, fast=False)`` — legacy keywords;
    - ``run(seed=spec)`` — a spec arriving through a legacy-signature
      wrapper that forwards ``seed=``/``fast=`` blindly (test harnesses
      do this); the spec wins over the accompanying ``fast``.
    """
    if isinstance(seed, ExperimentSpec):
        spec, seed = seed, None
    if isinstance(spec, ExperimentSpec):
        if not isinstance(spec, spec_cls):
            raise SpecError(
                f"expected a {spec_cls.__name__}, got {type(spec).__name__} "
                f"(experiment {spec.EXPERIMENT_ID or '?'})"
            )
        return spec
    if isinstance(spec, dict):
        return spec_cls.from_dict(spec)
    if spec is not None and not isinstance(spec, bool) and isinstance(spec, int):
        # Legacy positional: run(seed[, fast]).
        if seed is not None:
            raise SpecError(
                f"{spec_cls.__name__}: seed given both positionally "
                f"({spec}) and by keyword ({seed})"
            )
        seed = spec
    elif spec is not None:
        raise SpecError(
            f"{spec_cls.__name__}: cannot interpret first argument {spec!r} "
            f"as a spec or a seed"
        )
    preset = "fast" if fast is None or fast else "full"
    return spec_cls.preset(preset, seed=int(seed or 0))


# ---------------------------------------------------------------------------
# Override parsing (CLI --set / --grid values)


def _flat_field_names(spec_cls: type, prefix: str = "") -> list[str]:
    """Dotted field paths, nested blocks expanded (``corpus.start_year``)."""
    names: list[str] = []
    hints = spec_cls._hints()
    for f in fields(spec_cls):
        hint = hints[f.name]
        if isinstance(hint, type) and issubclass(hint, _SpecBase):
            names.extend(_flat_field_names(hint, prefix=f"{prefix}{f.name}."))
        else:
            names.append(f"{prefix}{f.name}")
    return names


def _coerce_value(spec_cls: type, f: dataclasses.Field, hint: Any, raw: str) -> Any:
    """Parse the string ``raw`` into the field's declared type."""

    def fail(expected: str) -> SpecError:
        return SpecError(
            f"{spec_cls.__name__}.{f.name} expects {expected}, got {raw!r}"
        )

    if hint is tuple or getattr(hint, "__origin__", None) is tuple:
        args = getattr(hint, "__args__", ())
        elem = next((a for a in args if a is not Ellipsis), str)
        parts = [p.strip() for p in raw.split(",") if p.strip() != ""]
        if not parts:
            raise fail("a comma-separated list")
        return tuple(_coerce_scalar(spec_cls, f, elem, p) for p in parts)
    return _coerce_scalar(spec_cls, f, hint, raw)


def _coerce_scalar(spec_cls: type, f: dataclasses.Field, hint: Any, raw: str) -> Any:
    name = f"{spec_cls.__name__}.{f.name}"
    if hint is bool:
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise SpecError(f"{name} expects a bool (true/false), got {raw!r}")
    if hint is int:
        try:
            return int(raw)
        except ValueError:
            raise SpecError(f"{name} expects an int, got {raw!r}") from None
    if hint is float:
        try:
            return float(raw)
        except ValueError:
            raise SpecError(f"{name} expects a float, got {raw!r}") from None
    return raw


def parse_override(spec_cls: type[ExperimentSpec], assignment: str) -> tuple[str, Any]:
    """Parse one ``key=value`` assignment against ``spec_cls``.

    Returns ``(dotted_key, parsed_value)``.  Raises :class:`SpecError`
    with a one-line message naming the spec class and its valid fields
    on unknown keys or unparsable values.
    """
    if "=" not in assignment:
        raise SpecError(
            f"override {assignment!r} is not of the form key=value "
            f"(valid {spec_cls.__name__} fields: "
            f"{', '.join(_flat_field_names(spec_cls))})"
        )
    key, raw = assignment.split("=", 1)
    key = key.strip()
    path = key.split(".")
    cls: type = spec_cls
    hints = cls._hints()
    field_map = {f.name: f for f in fields(cls)}
    for depth, part in enumerate(path):
        if part not in field_map:
            raise SpecError(
                f"{spec_cls.__name__} has no field {key!r}; valid fields: "
                f"{', '.join(_flat_field_names(spec_cls))}"
            )
        f = field_map[part]
        hint = hints[part]
        last = depth == len(path) - 1
        if isinstance(hint, type) and issubclass(hint, _SpecBase):
            if last:
                raise SpecError(
                    f"{spec_cls.__name__}.{key} is a parameter block; set a "
                    f"sub-field instead (e.g. "
                    f"{key}.{fields(hint)[0].name}=...)"
                )
            cls, hints = hint, hint._hints()
            field_map = {nf.name: nf for nf in fields(hint)}
            continue
        if not last:
            raise SpecError(
                f"{spec_cls.__name__} has no field {key!r}; valid fields: "
                f"{', '.join(_flat_field_names(spec_cls))}"
            )
        return key, _coerce_value(cls, f, hint, raw)
    raise SpecError(f"{spec_cls.__name__}: empty override key in {assignment!r}")


def apply_overrides(spec: ExperimentSpec, overrides: dict[str, Any]) -> ExperimentSpec:
    """Apply dotted-path overrides to ``spec``, re-validating.

    Values may be pre-parsed (from :func:`parse_override`) or raw
    strings, which are coerced against the field type here.
    """
    nested: dict[str, dict[str, Any]] = {}
    flat: dict[str, Any] = {}
    for key, value in overrides.items():
        if "." in key:
            head, rest = key.split(".", 1)
            nested.setdefault(head, {})[rest] = value
        else:
            flat[key] = value
    hints = type(spec)._hints()
    field_map = {f.name: f for f in fields(spec)}
    changes: dict[str, Any] = {}
    for key, value in flat.items():
        if key not in field_map:
            raise SpecError(
                f"{type(spec).__name__} has no field {key!r}; valid fields: "
                f"{', '.join(_flat_field_names(type(spec)))}"
            )
        if isinstance(value, str):
            value = _coerce_value(type(spec), field_map[key], hints[key], value)
        elif isinstance(value, list):
            value = tuple(value)
        changes[key] = value
    for head, sub in nested.items():
        if head not in field_map or not (
            isinstance(hints[head], type) and issubclass(hints[head], _SpecBase)
        ):
            dotted = f"{head}.{next(iter(sub))}"
            raise SpecError(
                f"{type(spec).__name__} has no field {dotted!r}; valid fields: "
                f"{', '.join(_flat_field_names(type(spec)))}"
            )
        block = getattr(spec, head)
        changes[head] = apply_overrides_block(block, sub)
    new_spec = spec.replace(**changes)
    origin = spec.origin_preset
    if origin is not None:
        object.__setattr__(new_spec, "_origin_preset", origin)
    return new_spec


def apply_overrides_block(block: _SpecBase, overrides: dict[str, Any]) -> _SpecBase:
    """Apply overrides to a nested parameter block."""
    hints = type(block)._hints()
    field_map = {f.name: f for f in fields(block)}
    changes: dict[str, Any] = {}
    for key, value in overrides.items():
        if key not in field_map:
            raise SpecError(
                f"{type(block).__name__} has no field {key!r}; valid fields: "
                f"{', '.join(sorted(field_map))}"
            )
        if isinstance(value, str):
            value = _coerce_value(type(block), field_map[key], hints[key], value)
        changes[key] = value
    return block.replace(**changes)


def parse_set_overrides(
    spec_cls: type[ExperimentSpec], assignments: list[str]
) -> dict[str, Any]:
    """Parse a list of ``key=value`` strings into an override dict."""
    overrides: dict[str, Any] = {}
    for assignment in assignments:
        key, value = parse_override(spec_cls, assignment)
        overrides[key] = value
    return overrides
