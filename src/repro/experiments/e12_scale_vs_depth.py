"""E12: scale vs depth.

Claim (paper §6.2.1): "while data from a small number of actors may not
seem to be 'at scale', it's clear that there are individuals with
enormous influence on the network and limited datasets from
interactions with these actors can have huge scaled implications."

Operationalization, in both of the library's worlds:

- *Interconnection*: in the mandatory-peering market, what share of
  delivered domestic traffic touches the top-k transit organizations?
  (Interviewing three organizations "covers" most of the traffic.)
- *Bibliometrics*: what share of within-corpus citations goes to the
  top 1% / 5% of papers, and what is the citation Gini?

Shape expected: top-3 ASes touch well over half the traffic; citations
are heavily concentrated (Gini > 0.6, top-5% share > 30%) — small-N
qualitative engagement with the right actors covers much of the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from collections import Counter

from repro.bibliometrics.metrics import gini, top_k_share
from repro.experiments._corpus import (
    corpus_config_from_params,
    resolve_backend,
    shared_aggregates_from_config,
    shared_corpus_from_config,
)
from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import (
    CorpusParams,
    ExperimentSpec,
    resolve_spec,
    spec_field,
)
from repro.io.tables import Table
from repro.netsim.bgp.ixp import connect_ixp_members
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.bgp.scenarios import build_mandatory_peering_scenario
from repro.netsim.bgp.traffic import resolve_flows


@dataclass(frozen=True)
class E12Spec(ExperimentSpec):
    """Knobs for E12: the interconnection market and the corpus shape."""

    n_small_isps: int = spec_field(20, minimum=2, maximum=500, help="small ISPs in the synthetic market")
    corpus: CorpusParams = CorpusParams()

    EXPERIMENT_ID: ClassVar[str] = "E12"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {
            "n_small_isps": 40,
            "corpus": CorpusParams(**CorpusParams.FULL),
        },
    }


def _traffic_concentration(seed: int, n_small_isps: int) -> list[tuple[int, float]]:
    """Share of delivered domestic volume touching the top-k ASes."""
    scenario = build_mandatory_peering_scenario(
        n_small_isps=n_small_isps, seed=seed
    )
    connect_ixp_members(scenario.graph, scenario.ixp)
    table = propagate_routes(scenario.graph)
    flows = resolve_flows(scenario.graph, table, scenario.demands)
    delivered = [f for f in flows if f.delivered]
    total = sum(f.demand.volume for f in delivered)
    volume_by_asn: dict[int, float] = {}
    for flow in delivered:
        assert flow.path is not None
        for asn in flow.path:
            volume_by_asn[asn] = volume_by_asn.get(asn, 0.0) + flow.demand.volume
    top = sorted(volume_by_asn.items(), key=lambda kv: (-kv[1], kv[0]))
    shares = []
    for k in (1, 3, 5):
        covered_flows = 0.0
        top_asns = {asn for asn, _ in top[:k]}
        for flow in delivered:
            assert flow.path is not None
            if any(asn in top_asns for asn in flow.path):
                covered_flows += flow.demand.volume
        shares.append((k, covered_flows / total if total else 0.0))
    return shares


def run(
    spec: E12Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E12; see module docstring for the expected shape."""
    spec = resolve_spec(E12Spec, spec, fast, seed)
    traffic_shares = _traffic_concentration(spec.seed, spec.n_small_isps)
    traffic_table = Table(
        ["top_k_ases", "traffic_touch_share"],
        title="E12a: domestic traffic touching the top-k ASes",
    )
    for k, share in traffic_shares:
        traffic_table.add_row([k, share])

    config = corpus_config_from_params(spec.seed, spec.corpus)
    # Both branches produce the same count *multisets*; gini and
    # top_k_share sort internally, so that suffices for bit-equal
    # results across backends.
    if resolve_backend(spec.corpus) == "columnar":
        aggregates = shared_aggregates_from_config(
            config, spec.corpus.shard_size
        )
        counts = [
            aggregates.citations.get(i, 0)
            for i in range(aggregates.n_papers)
        ]
        depth_counts = list(aggregates.author_papers.values())
    else:
        corpus, _ = shared_corpus_from_config(config)
        citation_counts = corpus.citation_counts()
        counts = [citation_counts.get(p.paper_id, 0) for p in corpus]
        depth_counts = list(
            Counter(
                author_id for p in corpus for author_id in p.author_ids
            ).values()
        )
    n = len(counts)
    citation_table = Table(
        ["metric", "value"], title="E12b: citation concentration"
    )
    top1 = top_k_share(counts, max(1, n // 100))
    top5 = top_k_share(counts, max(1, n // 20))
    citation_gini = gini(counts)
    citation_table.add_row(["top_1pct_share", top1])
    citation_table.add_row(["top_5pct_share", top5])
    citation_table.add_row(["gini", citation_gini])

    # Per-author depth: the same small-N story on the author axis —
    # how concentrated is authorship among the people who publish at
    # all? (Authors with zero papers are outside both backends' view.)
    n_authors = len(depth_counts)
    depth_table = Table(
        ["metric", "value"], title="E12c: per-author publication depth"
    )
    depth_table.add_row(["publishing_authors", n_authors])
    depth_table.add_row(
        ["top_10pct_author_share",
         top_k_share(depth_counts, max(1, n_authors // 10))]
    )
    depth_table.add_row(["papers_per_author_gini", gini(depth_counts)])

    result = make_result("E12")
    result.tables = [traffic_table, citation_table, depth_table]
    top3_share = dict(traffic_shares)[3]
    result.checks = {
        "top3_ases_touch_majority": top3_share > 0.5,
        "citations_concentrated_gini": citation_gini > 0.6,
        "top5pct_papers_over_30pct_citations": top5 > 0.3,
    }
    return result
