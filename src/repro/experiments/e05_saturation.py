"""E5: saturation and patchwork ethnography.

Claim (paper §3): "Good anthropology will always take time", but there
is "no reason for concluding that the time it takes must in every case
be spent in its bulk in a physical fieldsite" — patchwork engagement
can sustain depth with less contiguous field time.

Operationalization: generate an interview study whose codes follow a
Zipf-like popularity (a few phenomena appear everywhere; a long tail
appears rarely), bootstrap the code-discovery curve over interview
orderings, and compare the coverage a patchwork-sized budget achieves
against full immersion.

Shape expected: diminishing returns (second half of the interviews adds
far fewer new codes than the first); a ~40% budget reaches >= 75% (and
typically ~80-85%) of full-immersion code coverage; the bootstrap
saturation point lands well before the full budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.qualcoding.codebook import Codebook
from repro.qualcoding.saturation import bootstrap_saturation
from repro.qualcoding.segments import CodingSession, Document


@dataclass(frozen=True)
class E5Spec(ExperimentSpec):
    """Knobs for E5: study size and bootstrap effort.

    The interview count defaults to 40 in both presets (the 40%-budget
    claim is about this study size); fast mode saves on bootstrap
    orderings instead.
    """

    n_interviews: int = spec_field(40, minimum=4, maximum=1000, help="interviews in the synthetic study")
    n_codes: int = spec_field(30, minimum=2, maximum=500, help="codebook size")
    n_orderings: int = spec_field(50, minimum=2, maximum=10_000, help="bootstrap interview orderings")

    EXPERIMENT_ID: ClassVar[str] = "E5"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_orderings": 200},
    }


def build_interview_study(
    n_interviews: int = 40,
    n_codes: int = 30,
    seed: int = 0,
) -> CodingSession:
    """A coded interview study with Zipf-distributed code appearance.

    Code ``k`` (1-based) appears in any given interview with probability
    ``min(0.9, 1.5 / k)`` — the head codes are near-universal, the tail
    rare, which is what makes saturation curves bend.
    """
    rng = random.Random(seed)
    codebook = Codebook("synthetic-interview-study")
    for k in range(1, n_codes + 1):
        codebook.add(f"code-{k:02d}", f"Synthetic phenomenon #{k}")
    session = CodingSession(codebook)
    for i in range(n_interviews):
        doc_id = f"interview-{i:02d}"
        text = f"Synthetic transcript {i}. " * 20
        session.add_document(Document(doc_id, text))
        cursor = 0
        for k in range(1, n_codes + 1):
            if rng.random() < min(0.9, 1.5 / k):
                start = cursor % (len(text) - 10)
                session.code(doc_id, f"code-{k:02d}", start, start + 10, "r1")
                cursor += 17
    return session


def run(
    spec: E5Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E5; see module docstring for the expected shape."""
    spec = resolve_spec(E5Spec, spec, fast, seed)
    n_interviews = spec.n_interviews
    session = build_interview_study(
        n_interviews=n_interviews, n_codes=spec.n_codes, seed=spec.seed
    )
    boot = bootstrap_saturation(
        session, n_orderings=spec.n_orderings, seed=spec.seed
    )
    mean_curve = boot["mean_curve"]
    total = mean_curve[-1]

    curve_table = Table(
        ["n_interviews", "mean_codes", "coverage"],
        title="E5a: bootstrap mean code-discovery curve",
    )
    checkpoints = sorted(
        {1, n_interviews // 4, n_interviews // 2,
         3 * n_interviews // 4, n_interviews}
    )
    for n in checkpoints:
        curve_table.add_row([n, mean_curve[n - 1], mean_curve[n - 1] / total])

    patchwork_budget = max(1, round(0.4 * n_interviews))
    patchwork_coverage = mean_curve[patchwork_budget - 1] / total
    first_half_gain = mean_curve[n_interviews // 2 - 1]
    second_half_gain = total - first_half_gain

    summary = Table(["metric", "value"], title="E5b: schedule comparison")
    summary.add_row(["full_budget_interviews", n_interviews])
    summary.add_row(["patchwork_budget_interviews", patchwork_budget])
    summary.add_row(["patchwork_coverage_of_full", patchwork_coverage])
    summary.add_row(
        ["median_saturation_point", boot["median_saturation"] or -1]
    )
    summary.add_row(["first_half_new_codes", first_half_gain])
    summary.add_row(["second_half_new_codes", second_half_gain])

    result = make_result("E5")
    result.tables = [curve_table, summary]
    median_saturation = boot["median_saturation"]
    result.checks = {
        "diminishing_returns": second_half_gain < 0.5 * first_half_gain,
        "patchwork_reaches_75pct": patchwork_coverage >= 0.75,
        "saturates_before_full_budget": (
            median_saturation is not None
            and median_saturation < n_interviews
        ),
    }
    return result
