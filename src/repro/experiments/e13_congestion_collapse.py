"""E13: congestion collapse and the action-research counterfactual.

Claim (paper §2): networking's formative era worked like action
research — "innovations such as congestion control algorithms (e.g.,
TCP Tahoe) being relatively small extensions over existing designs and
deployed first into the Internet", iterated with operators; and "we
know what would have happened without these use-focused 'action'
methods".  What would have happened is congestion collapse: the 1986-88
episodes that open-loop senders caused and Jacobson's deployment-bred
AIMD fixed.

Operationalization: N senders share a drop-tail bottleneck; sweep
offered load for (a) the open-loop fixed-window sender with a static
timeout (the counterfactual), (b) Tahoe (the first deployed fix), and
(c) Reno (the next deployment iteration).

Shape expected: all protocols track capacity up to load 1.0; beyond it
the open-loop sender's goodput *falls* (duplicate retransmissions crowd
out fresh data once queueing delay exceeds its timeout) and stays
depressed, while Tahoe holds ≥ 0.7 of capacity and Reno ≥ Tahoe at
every overload point (fast recovery avoids Tahoe's window resets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.netsim.transport.sim import run_collapse_study


@dataclass(frozen=True)
class E13Spec(ExperimentSpec):
    """Knobs for E13: horizon and which sender protocols to simulate."""

    ticks: int = spec_field(250, minimum=50, maximum=100_000, help="simulation ticks per point")
    protocols: tuple[str, ...] = spec_field(
        ("fixed", "tahoe", "reno"),
        choices=("fixed", "tahoe", "reno"),
        help="sender protocols to sweep (any subset)",
    )

    EXPERIMENT_ID: ClassVar[str] = "E13"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"ticks": 600},
    }


def run(
    spec: E13Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E13 (deterministic; ``spec.seed`` accepted for uniformity)."""
    spec = resolve_spec(E13Spec, spec, fast, seed)
    results = run_collapse_study(protocols=spec.protocols, ticks=spec.ticks)

    table = Table(
        [
            "protocol", "offered_load", "goodput", "duplicate_share",
            "loss_rate", "retx_share", "queue_delay",
        ],
        title="E13: goodput vs offered load on a shared bottleneck",
    )
    by_protocol: dict[str, list] = {}
    for record in results:
        by_protocol.setdefault(record.protocol, []).append(record)
        table.add_row(
            [
                record.protocol,
                record.offered_load,
                record.goodput,
                record.duplicate_share,
                record.loss_rate,
                record.retransmission_share,
                record.mean_queue_delay,
            ]
        )

    # Checks are keyed only on the protocols actually simulated, so a
    # spec sweeping a protocol subset still gets a meaningful (and
    # passable) shape report; with the default tuple the dict below is
    # identical to the historical one.
    fixed = by_protocol.get("fixed", [])
    tahoe = by_protocol.get("tahoe", [])
    reno = by_protocol.get("reno", [])
    overload_fixed = [r for r in fixed if r.offered_load > 1.0]
    overload_tahoe = [r for r in tahoe if r.offered_load > 1.0]
    overload_reno = [r for r in reno if r.offered_load > 1.0]

    result = make_result("E13")
    result.tables = [table]
    checks = {
        "all_fine_at_or_below_capacity": all(
            r.goodput >= min(1.0, r.offered_load) - 0.05
            for rows in (fixed, tahoe, reno)
            for r in rows
            if r.offered_load <= 1.0
        ),
    }
    if fixed:
        fixed_at_capacity = next(r for r in fixed if r.offered_load == 1.0)
        checks["open_loop_collapses_under_overload"] = all(
            r.goodput <= fixed_at_capacity.goodput - 0.25
            for r in overload_fixed
        )
        checks["collapse_is_duplicates"] = all(
            r.duplicate_share >= 0.3 for r in overload_fixed
        )
    if tahoe:
        checks["tahoe_holds_goodput"] = all(
            r.goodput >= 0.7 for r in overload_tahoe
        )
    if tahoe and reno:
        checks["reno_at_least_tahoe"] = all(
            rr.goodput >= rt.goodput - 0.02
            for rr, rt in zip(overload_reno, overload_tahoe)
        )
    if tahoe or reno:
        checks["aimd_keeps_fairness"] = all(
            r.fairness >= 0.9 for r in overload_tahoe + overload_reno
        )
    result.checks = checks
    return result
