"""E13: congestion collapse and the action-research counterfactual.

Claim (paper §2): networking's formative era worked like action
research — "innovations such as congestion control algorithms (e.g.,
TCP Tahoe) being relatively small extensions over existing designs and
deployed first into the Internet", iterated with operators; and "we
know what would have happened without these use-focused 'action'
methods".  What would have happened is congestion collapse: the 1986-88
episodes that open-loop senders caused and Jacobson's deployment-bred
AIMD fixed.

Operationalization: N senders share a drop-tail bottleneck; sweep
offered load for (a) the open-loop fixed-window sender with a static
timeout (the counterfactual), (b) Tahoe (the first deployed fix), and
(c) Reno (the next deployment iteration).

Shape expected: all protocols track capacity up to load 1.0; beyond it
the open-loop sender's goodput *falls* (duplicate retransmissions crowd
out fresh data once queueing delay exceeds its timeout) and stays
depressed, while Tahoe holds ≥ 0.7 of capacity and Reno ≥ Tahoe at
every overload point (fast recovery avoids Tahoe's window resets).
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, make_result
from repro.io.tables import Table
from repro.netsim.transport.sim import run_collapse_study


def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E13 (deterministic; ``seed`` accepted for uniformity)."""
    ticks = 250 if fast else 600
    results = run_collapse_study(ticks=ticks)

    table = Table(
        [
            "protocol", "offered_load", "goodput", "duplicate_share",
            "loss_rate", "retx_share", "queue_delay",
        ],
        title="E13: goodput vs offered load on a shared bottleneck",
    )
    by_protocol: dict[str, list] = {}
    for record in results:
        by_protocol.setdefault(record.protocol, []).append(record)
        table.add_row(
            [
                record.protocol,
                record.offered_load,
                record.goodput,
                record.duplicate_share,
                record.loss_rate,
                record.retransmission_share,
                record.mean_queue_delay,
            ]
        )

    fixed = by_protocol["fixed"]
    tahoe = by_protocol["tahoe"]
    reno = by_protocol["reno"]
    overload_fixed = [r for r in fixed if r.offered_load > 1.0]
    overload_tahoe = [r for r in tahoe if r.offered_load > 1.0]
    overload_reno = [r for r in reno if r.offered_load > 1.0]
    fixed_at_capacity = next(r for r in fixed if r.offered_load == 1.0)

    result = make_result("E13")
    result.tables = [table]
    result.checks = {
        "all_fine_at_or_below_capacity": all(
            r.goodput >= min(1.0, r.offered_load) - 0.05
            for rows in (fixed, tahoe, reno)
            for r in rows
            if r.offered_load <= 1.0
        ),
        "open_loop_collapses_under_overload": all(
            r.goodput <= fixed_at_capacity.goodput - 0.25
            for r in overload_fixed
        ),
        "collapse_is_duplicates": all(
            r.duplicate_share >= 0.3 for r in overload_fixed
        ),
        "tahoe_holds_goodput": all(
            r.goodput >= 0.7 for r in overload_tahoe
        ),
        "reno_at_least_tahoe": all(
            rr.goodput >= rt.goodput - 0.02
            for rr, rt in zip(overload_reno, overload_tahoe)
        ),
        "aimd_keeps_fairness": all(
            r.fairness >= 0.9 for r in overload_tahoe + overload_reno
        ),
    }
    return result
