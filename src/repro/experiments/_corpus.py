"""Shared synthetic corpus for the bibliometric experiments (E1-E3, E12).

Generating and scanning the corpus dominates those experiments' cost,
and they test different claims on the *same* data — so the corpus is
built once per ``(seed, fast)`` and cached.
"""

from __future__ import annotations

from functools import lru_cache

from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.synthgen import (
    GroundTruth,
    SyntheticCorpusConfig,
    generate_corpus,
)


@lru_cache(maxsize=4)
def shared_corpus(seed: int = 0, fast: bool = True) -> tuple[Corpus, GroundTruth]:
    """The E1-E3/E12 corpus: 2000-2025 full, 2016-2025 in fast mode."""
    config = SyntheticCorpusConfig(
        start_year=2016 if fast else 2000,
        end_year=2025,
        seed=seed,
        authors_per_venue_pool=60 if fast else 120,
    )
    return generate_corpus(config)
