"""Shared corpus routing for the bibliometric experiments (E1-E3, E12).

Two backends serve the same generator config behind one module:

- **classic** — :func:`repro.bibliometrics.synthgen.generate_corpus`
  materializes per-:class:`Paper` dataclasses; the historical path and
  the equivalence oracle.
- **columnar** — the same classic content re-encoded as
  :class:`ColumnarShard` columns (:mod:`repro.bibliometrics.columnarize`),
  streamed one shard at a time and folded into
  :class:`~repro.bibliometrics.shardscan.CorpusAggregates`.  Content is
  identical by construction, so experiment results (and therefore
  ``config_hash``-keyed sweep/serve memoization entries) are identical;
  ``CorpusParams.backend``/``shard_size`` are execution knobs outside
  the spec identity (DESIGN.md §15).

:func:`resolve_backend` picks per spec: explicit ``classic``/``columnar``
wins, ``auto`` routes configs at or above
:data:`COLUMNAR_AUTO_THRESHOLD` estimated papers to columnar.

Both backends cache at two levels:

- **In memory** — one small explicit LRU shared by classic corpora,
  columnar corpora, and scanned aggregates (the ``lru_cache`` this
  replaced pinned corpora for interpreter lifetime);
  :func:`clear_corpus_cache` empties it.
- **On disk** — when a cache directory is configured
  (:func:`configure_corpus_cache`, the ``REPRO_CACHE_DIR`` environment
  variable, or ``SuiteRunner(cache_dir=...)``), entries land in a
  :class:`repro.io.artifacts.ArtifactCache`.  The classic backend
  stores one ``shared-corpus`` record stream per generator config; the
  columnar backend stores a small ``shared-corpus`` *manifest* (vocab +
  shard geometry + fingerprints, marked ``layout: columnar``) plus one
  ``corpus-shard`` entry per shard, so loading streams shard-by-shard
  (≤1 resident) instead of parsing one monolithic blob.  Per-key file
  locks ensure racing workers generate at most once, and every entry
  is a pure function of its header config — the scrub/repair hooks
  (:func:`regenerate_corpus_records`,
  :func:`regenerate_shard_records`) rebuild damaged entries
  byte-identically.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import asdict

from repro.bibliometrics.columnar import (
    SHARD_ARTIFACT_KIND,
    ColumnarCorpus,
    ColumnarShard,
    decode_shard,
    encode_shard,
)
from repro.bibliometrics.columnarize import (
    columnarize_corpus,
    vocab_from_records,
    vocab_to_records,
)
from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.shardscan import CorpusAggregates, scan_corpus
from repro.bibliometrics.synthgen import (
    GroundTruth,
    SyntheticCorpusConfig,
    default_venue_profiles,
    generate_corpus,
)
from repro.io.artifacts import ArtifactCache

#: Artifact-cache kind for the shared corpus entries (classic record
#: streams and columnar manifests — told apart by the ``layout`` key in
#: the entry config).
CORPUS_ARTIFACT_KIND = "shared-corpus"

#: Bump when the generator or serialization changes shape; existing
#: disk entries become unreachable and are regenerated on demand.
#: v2: cache keys carry the full config *including* ``venue_scale``
#: (corpus-size awareness) — pre-scale entries are orphaned.
#: v3: rides the artifact format's end-to-end digest bump (PR 9), so
#: every shared-corpus entry is re-landed with a verifiable checksum.
CORPUS_SCHEMA_VERSION = 3

#: ``backend="auto"`` routes configs at or above this many estimated
#: papers through the columnar engine.  Sized so the stock fast
#: (~4.4k papers) and full (~11.4k) presets stay classic while scaled
#: corpora (``venue_scale`` >= ~5 on full) stream.
COLUMNAR_AUTO_THRESHOLD = 50_000

#: How many cached values (classic corpora, columnar corpora, scanned
#: aggregates — distinct keys) to keep in memory at once.
_MEMORY_SLOTS = 4

_lock = threading.Lock()
_memory: OrderedDict[tuple, object] = OrderedDict()
_cache_dir: str | None = os.environ.get("REPRO_CACHE_DIR") or None


def corpus_config(seed: int = 0, fast: bool = True) -> SyntheticCorpusConfig:
    """The generator config behind ``shared_corpus(seed, fast)``."""
    return SyntheticCorpusConfig(
        start_year=2016 if fast else 2000,
        end_year=2025,
        seed=seed,
        authors_per_venue_pool=60 if fast else 120,
    )


def corpus_config_from_params(seed: int, params) -> SyntheticCorpusConfig:
    """The generator config for a spec's :class:`CorpusParams` block.

    ``params`` is a ``repro.experiments.spec.CorpusParams`` (duck-typed
    here to keep this module importable without the spec layer).  Note
    the backend knobs (``params.backend``/``params.shard_size``) are
    deliberately *not* part of the generator config: they choose the
    corpus representation, never its content.
    """
    return SyntheticCorpusConfig(
        start_year=params.start_year,
        end_year=params.end_year,
        seed=seed,
        authors_per_venue_pool=params.authors_per_venue_pool,
        venue_scale=getattr(params, "venue_scale", 1.0),
    )


def estimated_corpus_papers(config: SyntheticCorpusConfig) -> int:
    """How many papers ``config`` will generate (exact for stock profiles)."""
    per_year = sum(
        max(0, round(profile.papers_per_year * config.venue_scale))
        for profile in default_venue_profiles()
    )
    return per_year * max(0, config.end_year - config.start_year + 1)


def resolve_backend(params) -> str:
    """Which corpus engine a :class:`CorpusParams` block selects.

    Explicit ``"classic"``/``"columnar"`` win; ``"auto"`` (the default)
    routes by estimated corpus size against
    :data:`COLUMNAR_AUTO_THRESHOLD`.  Duck-typed so pre-backend specs
    (no ``backend`` attribute) resolve classic.
    """
    backend = getattr(params, "backend", "classic")
    if backend != "auto":
        return backend
    config = corpus_config_from_params(0, params)
    if estimated_corpus_papers(config) >= COLUMNAR_AUTO_THRESHOLD:
        return "columnar"
    return "classic"


def configure_corpus_cache(cache_dir: str | None) -> str | None:
    """Point the on-disk corpus cache at ``cache_dir`` (None disables).

    Returns the previous setting so callers can restore it.  The
    in-memory cache is unaffected.
    """
    global _cache_dir
    previous = _cache_dir
    _cache_dir = str(cache_dir) if cache_dir is not None else None
    return previous


def corpus_cache_dir() -> str | None:
    """The currently configured on-disk cache directory (or None)."""
    return _cache_dir


def clear_corpus_cache(disk: bool = False) -> None:
    """Drop every cached corpus from memory (and optionally disk).

    Args:
        disk: Also invalidate the configured artifact cache's corpus
            entries under **both** backends' kinds — ``shared-corpus``
            (classic streams and columnar manifests) and
            ``corpus-shard`` (columnar shard payloads) — forcing
            regeneration in every process; the invalidation hook tests
            and campaign tooling use this after a generator change.
    """
    with _lock:
        _memory.clear()
    if disk and _cache_dir is not None:
        cache = ArtifactCache(_cache_dir)
        cache.invalidate(CORPUS_ARTIFACT_KIND)
        cache.invalidate(SHARD_ARTIFACT_KIND)


def _serialize(corpus: Corpus, truth: GroundTruth) -> list[dict]:
    """Flatten ``(corpus, truth)`` into one JSONL-ready record stream."""
    records: list[dict] = []
    tables = corpus.to_records()
    for name in ("venues", "authors", "papers"):
        for row in tables[name]:
            records.append({"table": name, "row": row})
    for paper_id, families in sorted(truth.human_methods.items()):
        records.append({
            "table": "truth_methods",
            "row": {"paper_id": paper_id, "families": list(families)},
        })
    for paper_id in sorted(truth.positionality):
        records.append({
            "table": "truth_positionality",
            "row": {"paper_id": paper_id},
        })
    return records


def _deserialize(records: list[dict]) -> tuple[Corpus, GroundTruth]:
    """Inverse of :func:`_serialize`."""
    tables: dict[str, list[dict]] = {"venues": [], "authors": [], "papers": []}
    truth = GroundTruth()
    for record in records:
        table, row = record["table"], record["row"]
        if table in tables:
            tables[table].append(row)
        elif table == "truth_methods":
            truth.human_methods[row["paper_id"]] = tuple(row["families"])
        elif table == "truth_positionality":
            truth.positionality.add(row["paper_id"])
        else:
            raise ValueError(f"unknown corpus cache table {table!r}")
    return Corpus.from_records(tables), truth


def _strip_layout_keys(config: dict) -> SyntheticCorpusConfig:
    """The generator config inside a columnar cache-entry config."""
    kwargs = {
        key: value
        for key, value in config.items()
        if key not in ("layout", "shard_size", "shard")
    }
    return SyntheticCorpusConfig(**kwargs)


def regenerate_corpus_records(config: dict) -> list[dict]:
    """Rebuild a ``shared-corpus`` cache entry's records from its key config.

    The repair half of self-healing: a corpus entry is a pure function
    of its generator config, and the cache header carries that config —
    so ``repro integrity scrub --repair`` can hand the header config
    here and land a byte-identical replacement for a damaged entry.
    Dispatches on the ``layout`` marker: columnar manifests rebuild via
    :func:`columnarize_corpus`, classic streams via the generator.
    """
    if config.get("layout") == "columnar":
        generator_config = _strip_layout_keys(config)
        vocab, shards = columnarize_corpus(
            *_classic_value(generator_config), int(config["shard_size"])
        )
        return _manifest_records(vocab, shards)
    return _serialize(*generate_corpus(SyntheticCorpusConfig(**config)))


def regenerate_shard_records(config: dict) -> list[dict]:
    """Rebuild one columnarized ``corpus-shard`` entry from its key config.

    The columnar analogue of :func:`regenerate_corpus_records` for
    shard payload entries (``layout: columnar`` plus a ``shard``
    index); the classic corpus is re-derived (memory/disk/generate)
    and re-columnarized, so repair is byte-identical.
    """
    generator_config = _strip_layout_keys(config)
    _, shards = columnarize_corpus(
        *_classic_value(generator_config), int(config["shard_size"])
    )
    return encode_shard(shards[int(config["shard"])])


def _remember(key: tuple, value: object) -> None:
    """Insert into the in-memory LRU, evicting the oldest past capacity."""
    with _lock:
        _memory[key] = value
        _memory.move_to_end(key)
        while len(_memory) > _MEMORY_SLOTS:
            _memory.popitem(last=False)


def _recall(key: tuple):
    """Memory-LRU lookup (refreshes recency); None on miss."""
    with _lock:
        if key in _memory:
            _memory.move_to_end(key)
            return _memory[key]
    return None


def shared_corpus(seed: int = 0, fast: bool = True) -> tuple[Corpus, GroundTruth]:
    """The E1-E3/E12 corpus: 2000-2025 full, 2016-2025 in fast mode.

    Legacy entry point; spec-driven experiments call
    :func:`shared_corpus_from_config` with an explicit generator config
    instead.  Both paths share the caches — the two legacy operating
    points are just two configs.
    """
    return shared_corpus_from_config(corpus_config(seed=seed, fast=fast))


def shared_corpus_from_config(
    config: SyntheticCorpusConfig,
) -> tuple[Corpus, GroundTruth]:
    """The shared classic corpus for an explicit generator config.

    Resolution order: in-memory LRU (keyed by the *full* config, so
    sweep points with different corpus shapes never alias), then the
    configured on-disk artifact cache (corrupt entries fall back to
    regeneration), then
    :func:`repro.bibliometrics.synthgen.generate_corpus` — whose output
    is written back to both layers.
    """
    key = tuple(sorted(asdict(config).items()))
    cached = _recall(key)
    if cached is not None:
        return cached
    if _cache_dir is not None:
        cache = ArtifactCache(_cache_dir, version=CORPUS_SCHEMA_VERSION)

        def factory() -> list[dict]:
            return _serialize(*generate_corpus(config))

        records = cache.get_or_create(
            CORPUS_ARTIFACT_KIND, asdict(config), factory
        )
        # Even the generating process uses the deserialized form, so
        # every worker — generator or loader — computes on identical
        # objects (roundtrip fidelity is additionally test-enforced).
        value = _deserialize(records)
    else:
        value = generate_corpus(config)
    _remember(key, value)
    return value


def _classic_value(config: SyntheticCorpusConfig) -> tuple[Corpus, GroundTruth]:
    """The classic ``(corpus, truth)`` without *writing* a classic blob.

    The columnarizer needs the classic content as raw material; reuse a
    memory- or disk-cached classic corpus when one exists, but on a
    cold cache generate directly — a config routed columnar stores the
    manifest + shards, never the monolithic classic record stream.
    """
    key = tuple(sorted(asdict(config).items()))
    cached = _recall(key)
    if cached is not None:
        return cached
    value = None
    if _cache_dir is not None:
        cache = ArtifactCache(_cache_dir, version=CORPUS_SCHEMA_VERSION)
        records = cache.get(CORPUS_ARTIFACT_KIND, asdict(config))
        if records is not None:
            value = _deserialize(records)
    if value is None:
        value = generate_corpus(config)
    _remember(key, value)
    return value


def _manifest_records(vocab, shards: list[ColumnarShard]) -> list[dict]:
    """The columnar manifest record stream: geometry header + vocab."""
    return [{
        "manifest": "columnar",
        "shard_sizes": [shard.n_papers for shard in shards],
        "shard_fingerprints": [shard.fingerprint() for shard in shards],
    }] + vocab_to_records(vocab)


def _columnar_entry_config(
    config: SyntheticCorpusConfig, shard_size: int, shard: int | None = None
) -> dict:
    """The cache-entry config for a columnar manifest or shard payload."""
    entry = {**asdict(config), "layout": "columnar", "shard_size": shard_size}
    if shard is not None:
        entry["shard"] = shard
    return entry


def shared_columnar_corpus_from_config(
    config: SyntheticCorpusConfig,
    shard_size: int = 10_000,
) -> ColumnarCorpus:
    """The shared columnar corpus for an explicit generator config.

    Same content as :func:`shared_corpus_from_config` (the columnarizer
    re-encodes the classic generator's output — see
    :mod:`repro.bibliometrics.columnarize` for why), different cost
    model: with a disk cache configured the corpus streams shard
    payloads through ``corpus-shard`` entries with at most one shard
    decoded at a time, and only a small manifest is parsed up front.
    Cold-cache generation is a one-time linear-memory pass (the classic
    generator materializes); every later load — including in other
    processes — streams.
    """
    key = ("columnar", shard_size) + tuple(sorted(asdict(config).items()))
    cached = _recall(key)
    if cached is not None:
        return cached

    if _cache_dir is None:
        vocab, shards = columnarize_corpus(*_classic_value(config), shard_size)
        corpus = ColumnarCorpus(
            vocab,
            [shard.n_papers for shard in shards],
            shards.__getitem__,
        )
        _remember(key, corpus)
        return corpus

    cache = ArtifactCache(_cache_dir, version=CORPUS_SCHEMA_VERSION)
    manifest_config = _columnar_entry_config(config, shard_size)
    records = cache.get(CORPUS_ARTIFACT_KIND, manifest_config)
    if records is None:
        vocab, shards = columnarize_corpus(*_classic_value(config), shard_size)
        for index, shard in enumerate(shards):
            cache.put(
                SHARD_ARTIFACT_KIND,
                _columnar_entry_config(config, shard_size, index),
                encode_shard(shard),
            )
        records = _manifest_records(vocab, shards)
        cache.put(CORPUS_ARTIFACT_KIND, manifest_config, records)
    header = records[0]
    vocab = vocab_from_records(records[1:])

    def loader(index: int) -> ColumnarShard:
        entry = _columnar_entry_config(config, shard_size, index)
        shard_records = cache.get_or_create(
            SHARD_ARTIFACT_KIND, entry, lambda: regenerate_shard_records(entry)
        )
        return decode_shard(shard_records)

    corpus = ColumnarCorpus(
        vocab,
        [int(size) for size in header["shard_sizes"]],
        loader,
        shard_fingerprints=list(header["shard_fingerprints"]),
        max_resident=1,
    )
    _remember(key, corpus)
    return corpus


def shared_aggregates_from_config(
    config: SyntheticCorpusConfig,
    shard_size: int = 10_000,
    min_mentions: int = 1,
) -> CorpusAggregates:
    """The scanned :class:`CorpusAggregates` for a generator config.

    One streamed scan serves every experiment on the columnar backend
    (E1's adoption counts, E2's positionality confusion cells, E3's
    topic/sector rollups, E12's citation and author-depth counts), so
    the result is memory-cached alongside the corpora it summarizes.
    """
    key = ("aggregates", min_mentions, shard_size) + tuple(
        sorted(asdict(config).items())
    )
    cached = _recall(key)
    if cached is not None:
        return cached
    corpus = shared_columnar_corpus_from_config(config, shard_size)
    aggregates = scan_corpus(corpus, min_mentions)
    _remember(key, aggregates)
    return aggregates
