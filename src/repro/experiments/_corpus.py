"""Shared synthetic corpus for the bibliometric experiments (E1-E3, E12).

Generating and scanning the corpus dominates those experiments' cost,
and they test different claims on the *same* data — so the corpus is
built once per generator config and cached at two levels:

- **In memory** — a small explicit LRU (the ``lru_cache`` it replaces
  pinned corpora for interpreter lifetime with no way to release
  them); :func:`clear_corpus_cache` empties it.
- **On disk** — when a cache directory is configured
  (:func:`configure_corpus_cache`, the ``REPRO_CACHE_DIR`` environment
  variable, or ``SuiteRunner(cache_dir=...)``), the corpus is stored
  in a :class:`repro.io.artifacts.ArtifactCache` keyed by the full
  generator config.  Parallel suite workers and *subsequent processes*
  then load the JSONL entry instead of regenerating; a per-key file
  lock ensures racing workers generate at most once.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import asdict

from repro.bibliometrics.corpus import Corpus
from repro.bibliometrics.synthgen import (
    GroundTruth,
    SyntheticCorpusConfig,
    generate_corpus,
)
from repro.io.artifacts import ArtifactCache

#: Artifact-cache kind for the shared corpus entries.
CORPUS_ARTIFACT_KIND = "shared-corpus"

#: Bump when the generator or serialization changes shape; existing
#: disk entries become unreachable and are regenerated on demand.
#: v2: cache keys carry the full config *including* ``venue_scale``
#: (corpus-size awareness) — pre-scale entries are orphaned.
#: v3: rides the artifact format's end-to-end digest bump (PR 9), so
#: every shared-corpus entry is re-landed with a verifiable checksum.
CORPUS_SCHEMA_VERSION = 3

#: How many corpora (distinct generator configs) to keep in memory at once.
_MEMORY_SLOTS = 4

_lock = threading.Lock()
_memory: OrderedDict[tuple, tuple[Corpus, GroundTruth]] = OrderedDict()
_cache_dir: str | None = os.environ.get("REPRO_CACHE_DIR") or None


def corpus_config(seed: int = 0, fast: bool = True) -> SyntheticCorpusConfig:
    """The generator config behind ``shared_corpus(seed, fast)``."""
    return SyntheticCorpusConfig(
        start_year=2016 if fast else 2000,
        end_year=2025,
        seed=seed,
        authors_per_venue_pool=60 if fast else 120,
    )


def corpus_config_from_params(seed: int, params) -> SyntheticCorpusConfig:
    """The generator config for a spec's :class:`CorpusParams` block.

    ``params`` is a ``repro.experiments.spec.CorpusParams`` (duck-typed
    here to keep this module importable without the spec layer).
    """
    return SyntheticCorpusConfig(
        start_year=params.start_year,
        end_year=params.end_year,
        seed=seed,
        authors_per_venue_pool=params.authors_per_venue_pool,
        venue_scale=getattr(params, "venue_scale", 1.0),
    )


def configure_corpus_cache(cache_dir: str | None) -> str | None:
    """Point the on-disk corpus cache at ``cache_dir`` (None disables).

    Returns the previous setting so callers can restore it.  The
    in-memory cache is unaffected.
    """
    global _cache_dir
    previous = _cache_dir
    _cache_dir = str(cache_dir) if cache_dir is not None else None
    return previous


def corpus_cache_dir() -> str | None:
    """The currently configured on-disk cache directory (or None)."""
    return _cache_dir


def clear_corpus_cache(disk: bool = False) -> None:
    """Drop every cached corpus from memory (and optionally disk).

    Args:
        disk: Also invalidate the configured artifact cache's
            ``shared-corpus`` entries, forcing regeneration in every
            process — the invalidation hook tests and campaign tooling
            use after a generator change.
    """
    with _lock:
        _memory.clear()
    if disk and _cache_dir is not None:
        ArtifactCache(_cache_dir).invalidate(CORPUS_ARTIFACT_KIND)


def _serialize(corpus: Corpus, truth: GroundTruth) -> list[dict]:
    """Flatten ``(corpus, truth)`` into one JSONL-ready record stream."""
    records: list[dict] = []
    tables = corpus.to_records()
    for name in ("venues", "authors", "papers"):
        for row in tables[name]:
            records.append({"table": name, "row": row})
    for paper_id, families in sorted(truth.human_methods.items()):
        records.append({
            "table": "truth_methods",
            "row": {"paper_id": paper_id, "families": list(families)},
        })
    for paper_id in sorted(truth.positionality):
        records.append({
            "table": "truth_positionality",
            "row": {"paper_id": paper_id},
        })
    return records


def _deserialize(records: list[dict]) -> tuple[Corpus, GroundTruth]:
    """Inverse of :func:`_serialize`."""
    tables: dict[str, list[dict]] = {"venues": [], "authors": [], "papers": []}
    truth = GroundTruth()
    for record in records:
        table, row = record["table"], record["row"]
        if table in tables:
            tables[table].append(row)
        elif table == "truth_methods":
            truth.human_methods[row["paper_id"]] = tuple(row["families"])
        elif table == "truth_positionality":
            truth.positionality.add(row["paper_id"])
        else:
            raise ValueError(f"unknown corpus cache table {table!r}")
    return Corpus.from_records(tables), truth


def regenerate_corpus_records(config: dict) -> list[dict]:
    """Rebuild a ``shared-corpus`` cache entry's records from its key config.

    The repair half of self-healing: a corpus entry is a pure function
    of its generator config, and the cache header carries that config —
    so ``repro integrity scrub --repair`` can hand the header config
    here and land a byte-identical replacement for a damaged entry.
    """
    return _serialize(*generate_corpus(SyntheticCorpusConfig(**config)))


def _remember(key: tuple, value: tuple[Corpus, GroundTruth]) -> None:
    """Insert into the in-memory LRU, evicting the oldest past capacity."""
    with _lock:
        _memory[key] = value
        _memory.move_to_end(key)
        while len(_memory) > _MEMORY_SLOTS:
            _memory.popitem(last=False)


def shared_corpus(seed: int = 0, fast: bool = True) -> tuple[Corpus, GroundTruth]:
    """The E1-E3/E12 corpus: 2000-2025 full, 2016-2025 in fast mode.

    Legacy entry point; spec-driven experiments call
    :func:`shared_corpus_from_config` with an explicit generator config
    instead.  Both paths share the caches — the two legacy operating
    points are just two configs.
    """
    return shared_corpus_from_config(corpus_config(seed=seed, fast=fast))


def shared_corpus_from_config(
    config: SyntheticCorpusConfig,
) -> tuple[Corpus, GroundTruth]:
    """The shared corpus for an explicit generator config.

    Resolution order: in-memory LRU (keyed by the *full* config, so
    sweep points with different corpus shapes never alias), then the
    configured on-disk artifact cache (corrupt entries fall back to
    regeneration), then
    :func:`repro.bibliometrics.synthgen.generate_corpus` — whose output
    is written back to both layers.
    """
    key = tuple(sorted(asdict(config).items()))
    with _lock:
        if key in _memory:
            _memory.move_to_end(key)
            return _memory[key]
    if _cache_dir is not None:
        cache = ArtifactCache(_cache_dir, version=CORPUS_SCHEMA_VERSION)

        def factory() -> list[dict]:
            return _serialize(*generate_corpus(config))

        records = cache.get_or_create(
            CORPUS_ARTIFACT_KIND, asdict(config), factory
        )
        # Even the generating process uses the deserialized form, so
        # every worker — generator or loader — computes on identical
        # objects (roundtrip fidelity is additionally test-enforced).
        value = _deserialize(records)
    else:
        value = generate_corpus(config)
    _remember(key, value)
    return value
