"""E1: human-method adoption by venue.

Claim (paper §1, §6.4): work that foregrounds human experience "is often
treated as peripheral" in networking venues, while HCI venues "accept
and encourage qualitative methods-based networking research".

Shape expected: HCI/STS venues' human-method share exceeds networking
venues' by roughly 5-10x; the networking share grows slowly over the
corpus years but stays a small minority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.bibliometrics.statistics import (
    chi_squared_independence,
    proportion_confint,
    two_proportion_test,
)
from repro.bibliometrics.trends import (
    venue_adoption_table,
    venue_adoption_table_from_counts,
)
from repro.experiments._corpus import (
    corpus_config_from_params,
    resolve_backend,
    shared_aggregates_from_config,
    shared_corpus_from_config,
)
from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import CorpusParams, ExperimentSpec, resolve_spec
from repro.io.tables import Table


@dataclass(frozen=True)
class E1Spec(ExperimentSpec):
    """Knobs for E1: the shared corpus shape."""

    corpus: CorpusParams = CorpusParams()

    EXPERIMENT_ID: ClassVar[str] = "E1"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"corpus": CorpusParams(**CorpusParams.FULL)},
    }


def run(
    spec: E1Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E1; see module docstring for the expected shape."""
    spec = resolve_spec(E1Spec, spec, fast, seed)
    config = corpus_config_from_params(spec.seed, spec.corpus)
    if resolve_backend(spec.corpus) == "columnar":
        aggregates = shared_aggregates_from_config(
            config, spec.corpus.shard_size
        )
        records = venue_adoption_table_from_counts(
            aggregates.venue_year, aggregates.venue_kinds
        )
    else:
        corpus, _ = shared_corpus_from_config(config)
        records = venue_adoption_table(corpus)

    per_venue = Table(
        ["venue", "kind", "papers", "human_share", "early", "late"],
        title="E1a: human-method share per venue (detector output)",
    )
    for record in records:
        per_venue.add_row(
            [
                record["venue_id"],
                record["kind"],
                record["n_papers"],
                record["human_share"],
                record["early_share"],
                record["late_share"],
            ]
        )

    by_kind: dict[str, list[dict]] = {}
    for record in records:
        by_kind.setdefault(record["kind"], []).append(record)
    kind_table = Table(
        ["venue_kind", "n_venues", "mean_human_share"],
        title="E1b: mean human-method share by venue kind",
    )
    kind_means = {}
    for kind in sorted(by_kind):
        rows = by_kind[kind]
        mean_share = sum(r["human_share"] for r in rows) / len(rows)
        kind_means[kind] = mean_share
        kind_table.add_row([kind, len(rows), mean_share])

    # Inference: is the kind/adoption association real, and how wide are
    # the per-kind intervals?
    contingency = []
    kind_totals = {}
    for kind in sorted(by_kind):
        rows = by_kind[kind]
        n_papers = sum(r["n_papers"] for r in rows)
        n_human = sum(round(r["human_share"] * r["n_papers"]) for r in rows)
        kind_totals[kind] = (n_human, n_papers)
        contingency.append([n_human, n_papers - n_human])
    chi = chi_squared_independence(contingency)
    net_human, net_total = kind_totals.get("networking", (0, 1))
    hci_human, hci_total = kind_totals.get("hci", (0, 1))
    gap = two_proportion_test(hci_human, hci_total, net_human, net_total)
    inference = Table(
        ["quantity", "value"], title="E1c: inference", precision=4
    )
    low, high = proportion_confint(net_human, net_total)
    inference.add_row(["networking share 95% CI low", low])
    inference.add_row(["networking share 95% CI high", high])
    inference.add_row(["kind-vs-adoption chi2 p-value", chi["p_value"]])
    inference.add_row(["kind-vs-adoption Cramer's V", chi["cramers_v"]])
    inference.add_row(["hci-vs-networking z", gap["z"]])
    inference.add_row(["hci-vs-networking p-value", gap["p_value"]])

    networking_rows = by_kind.get("networking", [])
    growing = sum(
        1 for r in networking_rows if r["late_share"] >= r["early_share"]
    )
    result = make_result("E1")
    result.tables = [per_venue, kind_table, inference]
    result.checks = {
        "kind_association_significant": chi["p_value"] < 0.01,
        "hci_gap_significant": gap["significant_at_01"],
        "hci_over_networking_5x": (
            kind_means.get("hci", 0.0)
            >= 5.0 * max(kind_means.get("networking", 0.0), 1e-9)
        ),
        "sts_over_networking_5x": (
            kind_means.get("sts", 0.0)
            >= 5.0 * max(kind_means.get("networking", 0.0), 1e-9)
        ),
        "networking_stays_minority": kind_means.get("networking", 0.0) < 0.5,
        "networking_mostly_nondecreasing": (
            not networking_rows or growing >= len(networking_rows) / 2
        ),
    }
    return result
