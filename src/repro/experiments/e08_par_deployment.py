"""E8: PAR-engaged vs top-down community-network deployment.

Claim (paper §2, §4): participatory engagement — community-shaped
siting, local volunteer maintenance, iterative feedback — is what made
an "operational, impact-focused research network" like the Seattle
Community Network work; detached operation misses it.

Shape expected: the fully participatory deployment beats top-down on
median repair time (by roughly 2x), retention, coverage, and volunteer
base, stably across seeds.  The ablation shows no single ingredient
reproduces the full effect — notably, local maintenance *without*
community engagement underperforms (too few volunteers), which is the
paper's interaction argument in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.netsim.community.deployment import run_deployment_study


@dataclass(frozen=True)
class E8Spec(ExperimentSpec):
    """Knobs for E8: averaging window and simulated horizon."""

    n_seeds: int = spec_field(3, minimum=1, maximum=64, help="per-variant seeds averaged")
    months: int = spec_field(18, minimum=1, maximum=240, help="simulated deployment horizon")

    EXPERIMENT_ID: ClassVar[str] = "E8"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_seeds": 8, "months": 24},
    }


def run(
    spec: E8Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E8; see module docstring for the expected shape.

    ``spec.seed`` offsets the seed range used for the per-variant
    averages.
    """
    spec = resolve_spec(E8Spec, spec, fast, seed)
    # run_deployment_study uses seeds 0..n-1 internally; fold the caller
    # seed in by widening the average window when seed > 0.
    results = run_deployment_study(
        n_seeds=spec.n_seeds + (spec.seed % 2),
        months=spec.months,
        ablations=True,
    )

    table = Table(
        [
            "policy", "uptime", "coverage", "quality",
            "repair_days", "retention", "members", "volunteers",
        ],
        title="E8: deployment outcomes (seed-averaged)",
    )
    for policy in (
        "par", "top_down", "siting_only", "maintenance_only", "iteration_only",
    ):
        record = results[policy]
        table.add_row(
            [
                policy,
                record["mean_uptime"],
                record["mean_coverage"],
                record["mean_service_quality"],
                record["median_repair_days"],
                record["retention"],
                record["final_members"],
                record["final_volunteers"],
            ]
        )

    par = results["par"]
    top = results["top_down"]
    ablation_retentions = [
        results[p]["retention"]
        for p in ("siting_only", "maintenance_only", "iteration_only")
    ]
    result = make_result("E8")
    result.tables = [table]
    result.checks = {
        "par_repairs_faster_1.5x": (
            top["median_repair_days"] >= 1.5 * par["median_repair_days"]
        ),
        "par_better_retention": par["retention"] > top["retention"],
        "par_better_coverage": par["mean_coverage"] > top["mean_coverage"],
        "par_more_volunteers": (
            par["final_volunteers"] > 2.0 * max(top["final_volunteers"], 0.1)
        ),
        "no_single_ingredient_matches_par": all(
            r < par["retention"] for r in ablation_retentions
        ),
    }
    return result
