"""E4: qualitative-coding reliability.

Claim (paper §5.2, fn. 1): informal conversations "can be formally
coded" — a *technical* approach whose value rests on being reproducible
across raters.  This experiment validates the reliability machinery:

- plant ground-truth codes in synthetic documents, simulate raters who
  flip each code decision with probability ``noise``, and verify that
  kappa and alpha recover the planted reliability monotonically;
- an ablation plants a *rare* code (skewed prevalence) and shows raw
  percent agreement staying high while chance-corrected kappa collapses
  — the reason chance correction is the standard, not raw agreement.

Shape expected: kappa/alpha decrease monotonically in noise; at <= 10%
noise kappa >= 0.6 ("substantial"); in the skew ablation percent
agreement > 0.85 while kappa < 0.5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar

from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import ExperimentSpec, resolve_spec, spec_field
from repro.io.tables import Table
from repro.qualcoding.agreement import (
    cohens_kappa,
    kappa_interpretation,
    krippendorff_alpha,
    percent_agreement,
)


@dataclass(frozen=True)
class E4Spec(ExperimentSpec):
    """Knobs for E4: units per pair, replicates, and the noise sweep."""

    n_units: int = spec_field(200, minimum=10, maximum=100_000, help="units each rater pair labels")
    replicates: int = spec_field(5, minimum=1, maximum=100, help="replicates averaged per noise level")
    noise_levels: tuple[float, ...] = spec_field(
        (0.0, 0.05, 0.10, 0.20, 0.30),
        minimum=0.0,
        maximum=0.5,
        help="rater flip probabilities swept",
    )

    EXPERIMENT_ID: ClassVar[str] = "E4"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"n_units": 1000},
    }


def _simulate_pair(
    n_units: int,
    prevalence: float,
    noise: float,
    rng: random.Random,
) -> tuple[list[bool], list[bool]]:
    """Two raters labeling units whose true label has ``prevalence``.

    Each rater reports the true label flipped with probability ``noise``.
    """
    truth = [rng.random() < prevalence for _ in range(n_units)]

    def rate() -> list[bool]:
        return [
            (not label) if rng.random() < noise else label for label in truth
        ]

    return rate(), rate()


def run(
    spec: E4Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E4; see module docstring for the expected shape."""
    spec = resolve_spec(E4Spec, spec, fast, seed)
    rng = random.Random(spec.seed)
    n_units = spec.n_units
    noise_levels = spec.noise_levels

    noise_table = Table(
        ["noise", "percent", "kappa", "alpha", "band"],
        title="E4a: reliability vs planted rater noise (prevalence 0.5)",
    )
    kappas = []
    for noise in noise_levels:
        # Average several replicates so the monotonicity check is on the
        # statistic, not one draw.
        reps = spec.replicates
        percent_sum = kappa_sum = alpha_sum = 0.0
        for _ in range(reps):
            a, b = _simulate_pair(n_units, 0.5, noise, rng)
            percent_sum += percent_agreement(a, b)
            kappa_sum += cohens_kappa(a, b)
            alpha_sum += krippendorff_alpha(list(zip(a, b)))
        percent, kappa, alpha = (
            percent_sum / reps, kappa_sum / reps, alpha_sum / reps
        )
        kappas.append(kappa)
        noise_table.add_row(
            [noise, percent, kappa, alpha, kappa_interpretation(kappa)]
        )

    # Ablation: skewed prevalence makes raw agreement misleading.
    skew_table = Table(
        ["prevalence", "noise", "percent", "kappa"],
        title="E4b: prevalence-skew ablation (why chance correction matters)",
    )
    skew_rows = []
    skew_noise = 0.05
    for prevalence in (0.5, 0.1, 0.03):
        a, b = _simulate_pair(n_units * 5, prevalence, skew_noise, rng)
        percent = percent_agreement(a, b)
        kappa = cohens_kappa(a, b)
        skew_rows.append((prevalence, percent, kappa))
        skew_table.add_row([prevalence, skew_noise, percent, kappa])

    rare = skew_rows[-1]
    # Index of the noise level nearest 0.10 — index 2 for the default
    # sweep, and still meaningful when the sweep axis is overridden.
    idx_10 = min(
        range(len(noise_levels)), key=lambda i: abs(noise_levels[i] - 0.10)
    )
    result = make_result("E4")
    result.tables = [noise_table, skew_table]
    result.checks = {
        "kappa_monotone_in_noise": all(
            kappas[i] >= kappas[i + 1] - 0.02 for i in range(len(kappas) - 1)
        ),
        "kappa_substantial_at_10pct_noise": kappas[idx_10] >= 0.6,
        "kappa_perfect_at_zero_noise": kappas[0] > 0.999,
        "skew_percent_stays_high": rare[1] > 0.85,
        "skew_kappa_collapses": rare[2] < rare[1] - 0.3,
    }
    return result
