"""Parameter-sweep engine over typed experiment specs.

A sweep is the cross product of per-field value lists ("axes") applied
to a base preset spec: ``--grid seed=0,1,2 --grid n_eyeballs=10,20``
expands to six :class:`~repro.experiments.spec.ExperimentSpec`
instances, each with its own ``config_hash()``.  The points run through
:meth:`repro.runtime.runner.SuiteRunner.run_points` — so a sweep gets
the full fault-tolerant runtime for free: isolation, retries,
deadlines, supervised parallel fan-out, and crash-requeue.

Results are memoized in the shared
:class:`repro.io.artifacts.ArtifactCache` under the point's
``config_hash``; re-running a sweep (or overlapping a new grid with an
old one) replays finished points from disk instead of recomputing
them.  Each point can also be materialized under ``results_dir`` as
``<experiment>-<hash12>/`` holding the rendered result and the
checkpoint-shaped record.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import SpecError
from repro.experiments.registry import ExperimentResult, make_spec
from repro.experiments.spec import apply_overrides, parse_override
from repro.io.tables import Table

__all__ = [
    "SWEEP_RESULT_KIND",
    "SweepPoint",
    "SweepReport",
    "expand_grid",
    "load_grid_file",
    "parse_grid_args",
    "result_cache_config",
    "run_sweep",
]

#: Artifact-cache kind for memoized per-point experiment results.
SWEEP_RESULT_KIND = "experiment-result"


def result_cache_config(experiment_id: str, config_hash: str) -> dict:
    """The artifact-cache config addressing one memoized experiment result.

    Public because the result service (:mod:`repro.serve`) reads and
    writes the *same* entries: a sweep warms the server, a served cold
    request warms future sweeps.  Any change here invalidates both.
    """
    return {"experiment_id": experiment_id, "config_hash": config_hash}


# ---------------------------------------------------------------------------
# Grid parsing and expansion


def parse_grid_args(spec_cls: type, assignments: list[str]) -> dict[str, list]:
    """Parse CLI ``--grid key=v1,v2,...`` arguments into an axes dict.

    Each value is parsed against the (possibly dotted) field's declared
    type via :func:`repro.experiments.spec.parse_override`, so a bad
    key or value fails with the same one-line :class:`SpecError` that
    ``--set`` produces.  Axis order — and therefore expansion order —
    follows the command line.
    """
    grid: dict[str, list] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise SpecError(
                f"--grid {assignment!r} is not of the form key=v1,v2,..."
            )
        key, raw = assignment.split("=", 1)
        key = key.strip()
        parts = [p.strip() for p in raw.split(",") if p.strip() != ""]
        if not parts:
            raise SpecError(f"--grid {assignment!r} has no values")
        values = []
        for part in parts:
            parsed_key, value = parse_override(spec_cls, f"{key}={part}")
            values.append(value)
        if parsed_key in grid:
            raise SpecError(f"--grid axis {parsed_key!r} given twice")
        grid[parsed_key] = values
    return grid


def load_grid_file(path: str | Path) -> dict:
    """Load a JSON grid file.

    Schema: ``{"experiment": "E7", "grid": {"seed": [0, 1, 2]},
    "preset": "fast", "base": {"n_eyeballs": 12}}`` — ``experiment``
    may be omitted when the CLI names it, ``preset`` defaults to
    ``fast`` and ``base`` to no overrides.  Unlike ``--grid``, file
    axes carry real JSON values, so tuple-typed fields can sweep
    multi-element points (``"protocols": [["tahoe"], ["tahoe",
    "reno"]]``).
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot read grid file {path}: {exc}") from None
    if not isinstance(data, dict) or not isinstance(data.get("grid"), dict):
        raise SpecError(
            f"grid file {path} must be a JSON object with a 'grid' mapping"
        )
    if not all(isinstance(v, list) and v for v in data["grid"].values()):
        raise SpecError(
            f"grid file {path}: every grid axis must be a non-empty list"
        )
    return {
        "experiment": data.get("experiment"),
        "grid": data["grid"],
        "preset": data.get("preset", "fast"),
        "base": data.get("base", {}),
    }


def expand_grid(base_spec, grid: dict[str, list]) -> list:
    """The cross product of ``grid`` axes applied to ``base_spec``.

    Expansion is deterministic: axes vary slowest-first in the order
    the dict provides them (``itertools.product`` semantics), so the
    same grid always yields the same point sequence.  An empty grid is
    the single base point.
    """
    if not grid:
        return [base_spec]
    keys = list(grid)
    specs = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        specs.append(apply_overrides(base_spec, dict(zip(keys, combo))))
    return specs


# ---------------------------------------------------------------------------
# Sweep execution


@dataclass
class SweepPoint:
    """One grid point's spec and outcome.

    ``source`` is ``"run"`` for freshly executed points and ``"cache"``
    for points replayed from the artifact cache.
    """

    spec: Any
    record: Any
    source: str = "run"

    @property
    def result(self) -> ExperimentResult | None:
        return self.record.result


@dataclass
class SweepReport:
    """All points of one sweep, in expansion order."""

    experiment_id: str
    axes: list[str] = field(default_factory=list)
    points: list[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def ok(self) -> bool:
        """True when every point succeeded and every shape held."""
        return all(p.record.shape_holds for p in self.points)

    def fingerprint(self) -> str:
        """Semantic digest of the sweep, stable across worker counts.

        Durations are zeroed and the cache/run source is excluded, so a
        warm re-run (or a 4-worker run) fingerprints identically to a
        cold sequential one — the equality the sweep determinism tests
        assert.
        """
        import hashlib

        payload = []
        for point in self.points:
            row = point.record.to_record()
            row["duration"] = 0.0
            payload.append(row)
        canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _axis_value(self, spec, axis: str):
        value = spec
        for part in axis.split("."):
            value = getattr(value, part)
        if isinstance(value, tuple):
            return ",".join(str(v) for v in value)
        return value

    def summary_table(self) -> Table:
        """Per-point summary rendered through :mod:`repro.io.tables`."""
        table = Table(
            ["point"] + list(self.axes)
            + ["status", "checks", "duration_s", "source"],
            title=f"sweep {self.experiment_id}: "
            f"{len(self.points)} points over {', '.join(self.axes) or 'base'}",
        )
        for point in self.points:
            record = point.record
            passed = sum(bool(v) for v in record.checks.values())
            table.add_row(
                [point_dirname(self.experiment_id, point.spec)]
                + [self._axis_value(point.spec, axis) for axis in self.axes]
                + [
                    record.status,
                    f"{passed}/{len(record.checks)}",
                    record.duration,
                    point.source,
                ]
            )
        return table

    def summary(self) -> dict:
        """Machine-readable summary (the ``--json-summary`` payload)."""
        return {
            "experiment_id": self.experiment_id,
            "axes": list(self.axes),
            "total": len(self.points),
            "ok": sum(p.record.status == "ok" for p in self.points),
            "from_cache": sum(p.source == "cache" for p in self.points),
            "all_ok": self.ok,
            "fingerprint": self.fingerprint(),
            "points": [
                {
                    "config_hash": p.record.config_hash,
                    "source": p.source,
                    "record": p.record.to_record(),
                }
                for p in self.points
            ],
        }


def point_dirname(experiment_id: str, spec) -> str:
    """The results-directory name for one point (id + short hash)."""
    return f"{experiment_id}-{spec.config_hash()[:12]}"


def _cache_config(experiment_id: str, spec) -> dict:
    return result_cache_config(experiment_id, spec.config_hash())


def _write_point_dir(results_dir: Path, experiment_id: str, point: SweepPoint) -> None:
    point_dir = results_dir / point_dirname(experiment_id, point.spec)
    point_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "source": point.source,
        "record": point.record.to_record(),
    }
    (point_dir / "record.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    if point.result is not None:
        (point_dir / "result.txt").write_text(
            point.result.render() + "\n", encoding="utf-8"
        )


def run_sweep(
    experiment_id: str,
    grid: dict[str, list],
    *,
    preset: str = "fast",
    base_overrides: dict | None = None,
    workers: int = 1,
    results_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    runner=None,
    **runner_kwargs,
) -> SweepReport:
    """Expand ``grid`` against a preset of ``experiment_id`` and run it.

    Points whose ``config_hash`` already has a memoized result in
    ``cache_dir`` are replayed from disk (``source="cache"``); the rest
    run through :meth:`SuiteRunner.run_points` — parallel when
    ``workers > 1`` — and successful fresh results are written back to
    the cache.  Extra keyword arguments construct the
    :class:`~repro.runtime.runner.SuiteRunner` (``retries=``,
    ``timeout=``, ``fault_injector=``, ...); pass ``runner=`` to
    supply a preconfigured one instead.
    """
    from repro.runtime.runner import SuiteRunner

    base = make_spec(experiment_id, preset, overrides=base_overrides)
    specs = expand_grid(base, grid)

    cache = None
    if cache_dir is not None:
        from repro.io.artifacts import ArtifactCache

        cache = ArtifactCache(cache_dir)

    points: list[SweepPoint | None] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        rows = (
            cache.get(SWEEP_RESULT_KIND, _cache_config(experiment_id, spec))
            if cache is not None
            else None
        )
        if rows:
            from repro.runtime.runner import RunRecord

            record = RunRecord.from_record(rows[0]["record"])
            record.result = ExperimentResult.from_payload(rows[0]["result"])
            points[index] = SweepPoint(spec=spec, record=record, source="cache")
        else:
            pending.append(index)

    if pending:
        if runner is None:
            runner = SuiteRunner(
                cache_dir=str(cache_dir) if cache_dir is not None else None,
                **runner_kwargs,
            )
        report = runner.run_points([specs[i] for i in pending], workers=workers)
        for index, record in zip(pending, report.records):
            point = SweepPoint(spec=specs[index], record=record, source="run")
            points[index] = point
            if (
                cache is not None
                and record.status == "ok"
                and record.result is not None
            ):
                cache.put(
                    SWEEP_RESULT_KIND,
                    _cache_config(experiment_id, point.spec),
                    [
                        {
                            "record": record.to_record(),
                            "result": record.result.to_payload(),
                        }
                    ],
                )

    sweep_report = SweepReport(
        experiment_id=experiment_id,
        axes=list(grid),
        points=[p for p in points if p is not None],
    )
    if results_dir is not None:
        root = Path(results_dir)
        for point in sweep_report.points:
            _write_point_dir(root, experiment_id, point)
    return sweep_report
