"""E2: positionality-statement prevalence by venue kind.

Claim (paper §4): positionality statements — authors situating their
identities, locations, beliefs, and community ties — are conventional
in feminist-STS-informed venues and essentially absent from networking
venues.

Shape expected: detected prevalence under 2% at networking venues and
double-digit percent at HCI/STS venues; the extractor's precision and
recall against the generator's ground truth both above 0.9 (it is a
rule-based extractor over rule-generated text — this check guards the
pipeline, not linguistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.core.positionality import has_positionality_statement
from repro.experiments._corpus import (
    corpus_config_from_params,
    resolve_backend,
    shared_aggregates_from_config,
    shared_corpus_from_config,
)
from repro.experiments.registry import ExperimentResult, make_result
from repro.experiments.spec import CorpusParams, ExperimentSpec, resolve_spec
from repro.io.tables import Table


@dataclass(frozen=True)
class E2Spec(ExperimentSpec):
    """Knobs for E2: the shared corpus shape."""

    corpus: CorpusParams = CorpusParams()

    EXPERIMENT_ID: ClassVar[str] = "E2"
    PRESETS: ClassVar[dict[str, dict]] = {
        "fast": {},
        "full": {"corpus": CorpusParams(**CorpusParams.FULL)},
    }


def run(
    spec: E2Spec | None = None,
    fast: bool | None = None,
    seed: int | None = None,
) -> ExperimentResult:
    """Run E2; see module docstring for the expected shape."""
    spec = resolve_spec(E2Spec, spec, fast, seed)
    config = corpus_config_from_params(spec.seed, spec.corpus)

    # Both branches fill the same integer cells (exact counts, so the
    # accumulation order can't perturb them): per-kind papers/detected/
    # truth plus the global confusion totals.
    per_kind: dict[str, dict[str, int]] = {}
    true_positive = false_positive = false_negative = 0
    if resolve_backend(spec.corpus) == "columnar":
        aggregates = shared_aggregates_from_config(
            config, spec.corpus.shard_size
        )
        for (venue_id, _year), cells in aggregates.positionality.items():
            kind = aggregates.venue_kinds[venue_id]
            bucket = per_kind.setdefault(
                kind, {"papers": 0, "detected": 0, "truth": 0}
            )
            bucket["papers"] += cells["papers"]
            bucket["detected"] += cells["detected"]
            bucket["truth"] += cells["truth"]
            true_positive += cells["tp"]
            false_positive += cells["fp"]
            false_negative += cells["fn"]
    else:
        corpus, truth = shared_corpus_from_config(config)
        for paper in corpus:
            kind = corpus.venue(paper.venue_id).kind
            bucket = per_kind.setdefault(
                kind, {"papers": 0, "detected": 0, "truth": 0}
            )
            bucket["papers"] += 1
            detected = has_positionality_statement(paper.full_text)
            actual = paper.paper_id in truth.positionality
            bucket["detected"] += int(detected)
            bucket["truth"] += int(actual)
            if detected and actual:
                true_positive += 1
            elif detected:
                false_positive += 1
            elif actual:
                false_negative += 1

    table = Table(
        ["venue_kind", "papers", "detected_share", "truth_share"],
        title="E2a: positionality prevalence by venue kind",
    )
    shares = {}
    for kind in sorted(per_kind):
        bucket = per_kind[kind]
        detected_share = bucket["detected"] / bucket["papers"]
        shares[kind] = detected_share
        table.add_row(
            [
                kind,
                bucket["papers"],
                detected_share,
                bucket["truth"] / bucket["papers"],
            ]
        )

    precision = (
        true_positive / (true_positive + false_positive)
        if (true_positive + false_positive)
        else 1.0
    )
    recall = (
        true_positive / (true_positive + false_negative)
        if (true_positive + false_negative)
        else 1.0
    )
    detector_table = Table(
        ["metric", "value"], title="E2b: extractor accuracy vs ground truth"
    )
    detector_table.add_row(["precision", precision])
    detector_table.add_row(["recall", recall])

    result = make_result("E2")
    result.tables = [table, detector_table]
    result.checks = {
        "networking_below_2pct": shares.get("networking", 0.0) < 0.02,
        "hci_double_digit": shares.get("hci", 0.0) >= 0.10,
        "sts_double_digit": shares.get("sts", 0.0) >= 0.10,
        "precision_above_0.9": precision > 0.9,
        "recall_above_0.9": recall > 0.9,
    }
    return result
