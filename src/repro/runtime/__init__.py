"""Fault-tolerant experiment runtime.

- :mod:`repro.runtime.runner` -- :class:`SuiteRunner`: per-experiment
  isolation, retries with exponential backoff, wall-clock deadlines,
  and JSONL checkpoint/resume for the E1-E13 suite.
- :mod:`repro.runtime.faultinject` -- :class:`FaultInjector`: a
  deterministic, seeded harness that makes registered call sites raise,
  hang, or corrupt their return value — used to test the runner and
  available for netsim resilience studies.
- :mod:`repro.runtime.parallel` -- the process-pool worker behind
  ``SuiteRunner(workers=N)``: runs one experiment per task and streams
  back its record plus an observability shard.
"""

from repro.runtime.faultinject import FaultInjector, FaultSpec
from repro.runtime.runner import (
    RetryPolicy,
    RunRecord,
    SuiteReport,
    SuiteRunner,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "RunRecord",
    "SuiteReport",
    "SuiteRunner",
]
