"""Fault-tolerant experiment runtime.

- :mod:`repro.runtime.runner` -- :class:`SuiteRunner`: per-experiment
  isolation, retries with exponential backoff, wall-clock deadlines,
  and JSONL checkpoint/resume for the E1-E13 suite.
- :mod:`repro.runtime.faultinject` -- :class:`FaultInjector`: a
  deterministic, seeded harness that makes registered call sites raise,
  hang, corrupt their return value, or inject process/disk faults
  (``kill``/``oom``/``enospc``) — used to test the runner and
  available for netsim resilience studies.
- :mod:`repro.runtime.parallel` -- the process-pool worker behind
  ``SuiteRunner(workers=N)``: runs one experiment per task and streams
  back its record plus an observability shard.
- :mod:`repro.runtime.supervisor` -- :class:`WorkerSupervisor`:
  process-level supervision for the pool — crash detection, requeue
  under a per-task crash budget, poison-task quarantine, and a
  degradation ladder down to in-process execution.
"""

from repro.runtime.faultinject import (
    FaultInjector,
    FaultSpec,
    use_fault_injector,
)
from repro.runtime.runner import (
    RetryPolicy,
    RunRecord,
    SuiteReport,
    SuiteRunner,
)
from repro.runtime.supervisor import WorkerSupervisor

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "RunRecord",
    "SuiteReport",
    "SuiteRunner",
    "WorkerSupervisor",
    "use_fault_injector",
]
