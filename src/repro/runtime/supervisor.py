"""Process-level supervision for the parallel suite runtime.

:class:`repro.runtime.runner.SuiteRunner` keeps *in-worker* failures —
exceptions, deadline overruns — from taking a suite down, but a worker
that dies outright (OOM killer, a segfault in a C extension, an
injected ``kill`` fault) never gets to run that machinery: the process
pool breaks, every in-flight future raises ``BrokenProcessPool``, and
before this module existed that single event aborted the whole run.

:class:`WorkerSupervisor` sits between the runner and the pool and
turns worker death into a survivable, *recorded* event:

- **Detection.**  A broken pool, a worker with a nonzero exit code, or
  (optionally) a missed heartbeat — no task completing within
  ``heartbeat_timeout`` — all register as a crash event.  Exit codes
  are harvested from the dying pool before it is torn down, so the
  record says *how* the worker died (``SIGKILL``, ``SIGSEGV``, ...).
- **Requeue under a crash budget.**  In-flight tasks are requeued onto
  a rebuilt pool.  Tasks that have crashed a worker before are run one
  at a time, so subsequent blame is precise; a task that kills
  ``max_worker_crashes`` consecutive workers is *quarantined* — it gets
  a structured :class:`repro.errors.WorkerCrashError` record instead of
  being retried forever, and the rest of the suite proceeds.  The
  budget-exhausting crash must be *solo-proven* (exactly one task in
  flight), so an innocent task that merely shared a pool with a poison
  one is never quarantined for it.
- **Degradation ladder.**  When the pool itself keeps breaking
  (``max_pool_rebuilds`` crash events), the supervisor stops trusting
  process isolation and finishes the remaining tasks sequentially
  in-process, so a ``keep_going`` run always ends with a complete
  :class:`~repro.runtime.runner.SuiteReport`.

Everything is observable: crash events, rebuilds, quarantines, and
degradation are counted (``runner.worker_crashes``,
``runner.pool_rebuilds``, ``runner.quarantined``, ``runner.degraded``)
and emitted as ``worker_crash`` / ``pool_rebuild`` / ``quarantine`` /
``degrade`` spans carrying the exit evidence, which is what
``repro obs report`` renders as the crash-cause breakdown.

The supervisor changes nothing about *what* runs: tasks are the same
picklable dicts :func:`repro.runtime.parallel.make_task` builds, and
completions stream back to the runner, which still flushes them in
suite order.  That is why the determinism invariant — same report
fingerprint at 1 and N workers — holds even while workers are being
killed mid-run.
"""

from __future__ import annotations

import signal as signal_module
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    TimeoutError,
    wait,
)
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import WorkerCrashError
from repro.runtime.parallel import (
    failure_payload,
    run_experiment_task,
    worker_init,
)

__all__ = ["WorkerSupervisor"]


def _signal_name(exit_code: int | None) -> str | None:
    """The signal name behind a negative exit code, when it maps to one."""
    if exit_code is None or exit_code >= 0:
        return None
    try:
        return signal_module.Signals(-exit_code).name
    except ValueError:  # pragma: no cover - unnamed signal number
        return f"signal {-exit_code}"


@dataclass
class _TaskState:
    """Supervision bookkeeping for one dispatched task."""

    index: int
    task: dict
    experiment_id: str
    crashes: int = 0
    exit_code: int | None = None
    exit_signal: str | None = None
    reason: str | None = None


class WorkerSupervisor:
    """Run pool tasks under crash detection, requeue, and quarantine.

    Args:
        workers: Pool size ceiling (actual pools are also capped by the
            number of tasks in the current batch).
        mp_context: ``multiprocessing`` context for the pool (the
            runner passes its fork context).
        max_worker_crashes: Crash budget per task: a task that kills
            this many consecutive workers is quarantined as a poison
            task instead of requeued again.  The final crash must have
            happened with the task alone in flight (suspects run solo,
            so this is at most one extra requeue), keeping quarantine
            verdicts precise even at budget 1.
        max_pool_rebuilds: After this many crash events the supervisor
            walks down the degradation ladder (see ``degrade``).
        degrade: When True (default), repeated pool breakage degrades
            the remaining tasks to sequential in-process execution;
            when False the supervisor keeps rebuilding pools until
            every task completes or is quarantined.
        heartbeat_timeout: Optional liveness bound in seconds: when no
            task completes for this long, the workers are presumed
            wedged, killed, and the in-flight tasks treated as a crash
            event.  None (default) disables the heartbeat — in-worker
            deadlines already bound runtimes for ordinary hangs.
        poll_interval: How often the future-wait loop wakes to check
            worker liveness.
        tracer: Span sink for crash/rebuild/quarantine/degrade events.
        metrics: Counter sink for the ``runner.*`` supervision metrics.
        on_crash: Callback invoked once per crash event after the
            broken pool is torn down (the runner hooks the artifact
            cache's orphan sweep here — every pool writer is dead at
            that point, so a zero-grace sweep is safe).
    """

    def __init__(
        self,
        *,
        workers: int,
        mp_context=None,
        max_worker_crashes: int = 2,
        max_pool_rebuilds: int = 3,
        degrade: bool = True,
        heartbeat_timeout: float | None = None,
        poll_interval: float = 0.25,
        tracer=None,
        metrics=None,
        on_crash: Callable[[], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_worker_crashes < 1:
            raise ValueError(
                f"max_worker_crashes must be >= 1, got {max_worker_crashes}"
            )
        self.workers = workers
        self.max_worker_crashes = max_worker_crashes
        self.max_pool_rebuilds = max_pool_rebuilds
        self.degrade = degrade
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self._mp_context = mp_context
        self._tracer = tracer
        self._metrics = metrics
        self._on_crash = on_crash
        self._pool: ProcessPoolExecutor | None = None
        self._pool_rebuilds = 0
        self._degraded = False
        # Exit codes observed from dying workers, accumulated every
        # poll tick: by the time a crash is handled, the executor's own
        # management thread may already have reaped the corpses out of
        # its process table, so evidence is collected while it exists.
        self._exit_codes: list[int] = []
        self._seen_pids: set[int] = set()

    # -- public API ----------------------------------------------------

    def run(self, tasks: list[tuple[int, dict]]) -> Iterator[tuple[int, dict]]:
        """Run every task; yields ``(index, shard payload)`` as they finish.

        Every task yields exactly once — with its worker's real shard,
        a synthesized failure shard for an ordinary worker exception,
        or a quarantine shard carrying the
        :class:`~repro.errors.WorkerCrashError` evidence.  Completion
        order is arbitrary (the runner re-orders at flush time).
        """
        queue = [
            _TaskState(index=index, task=task,
                       experiment_id=task["experiment_id"])
            for index, task in tasks
        ]
        try:
            while queue:
                if self._degraded:
                    yield from self._run_degraded(queue)
                    return
                batch = self._select_batch(queue)
                finished, crashed, reason = self._run_batch(batch)
                for state, payload in finished:
                    queue.remove(state)
                    yield state.index, payload
                if crashed:
                    for state, payload in self._handle_crash(crashed, reason):
                        if payload is not None:  # quarantined
                            queue.remove(state)
                            yield state.index, payload
        finally:
            self._shutdown_pool(wait_for_workers=False)

    # -- batching ------------------------------------------------------

    def _select_batch(self, queue: list[_TaskState]) -> list[_TaskState]:
        """Tasks to dispatch next.

        Clean tasks (never crashed a worker) run together.  Once only
        suspects remain they run one at a time: a solo crash blames
        exactly one task, so quarantine verdicts rest on precise
        evidence rather than on whoever shared the pool with the
        poison task.
        """
        clean = [state for state in queue if state.crashes == 0]
        if clean:
            return clean
        return [queue[0]]

    def _run_batch(
        self, batch: list[_TaskState]
    ) -> tuple[list[tuple[_TaskState, dict]], list[_TaskState], str]:
        """Dispatch one batch; returns (finished, crash-blamed, reason)."""
        finished: list[tuple[_TaskState, dict]] = []
        try:
            executor = self._ensure_pool(len(batch))
            futures = {
                executor.submit(run_experiment_task, state.task): state
                for state in batch
            }
        except BrokenExecutor:
            # The pool broke at submit time (a worker died between
            # batches).  Nothing from this batch ran; rebuild and blame
            # no one — the causing task was already handled.
            self._note_rebuild("pool broke at submit")
            return finished, [], ""
        pending = set(futures)
        completed: set = set()
        reason = "worker process died"
        pool_broken = False
        last_progress = time.monotonic()
        while pending:
            self._observe_exit_codes()
            done, pending = wait(
                pending, timeout=self.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            if done:
                last_progress = time.monotonic()
            for future in done:
                state = futures[future]
                try:
                    payload = future.result()
                except BrokenExecutor:
                    pool_broken = True
                except Exception as exc:  # noqa: BLE001 - worker raised
                    # The worker survived but the task round-trip failed
                    # (unpicklable result, protocol bug): an ordinary
                    # failure record, not a crash.
                    self._count("runner.worker_failures")
                    finished.append((state, failure_payload(
                        exc, state.experiment_id,
                        state.task["seed"], state.task["fast"],
                        config_hash=state.task.get("config_hash"),
                        spec=state.task.get("spec"),
                    )))
                    completed.add(future)
                else:
                    finished.append((state, payload))
                    completed.add(future)
            if pool_broken:
                break
            if (
                pending
                and self.heartbeat_timeout is not None
                and time.monotonic() - last_progress > self.heartbeat_timeout
            ):
                # Nothing has completed for a full heartbeat window:
                # the workers are presumed wedged.  Kill them; the
                # futures then surface as a broken pool below.
                reason = (
                    f"missed heartbeat ({self.heartbeat_timeout}s without "
                    "progress)"
                )
                self._terminate_workers()
                last_progress = time.monotonic()
        if not pool_broken:
            return finished, [], ""
        # Drain the siblings: a task that finished just before the pool
        # broke keeps its real result; everything unfinished joins the
        # blame set.  Blame is deliberately coarse here — the parent
        # cannot reliably tell which unfinished future was on the dying
        # worker (the future state machine races the crash) — but a
        # coarse blame only marks tasks as suspects; suspects run solo,
        # and only a solo-proven crash can quarantine (see
        # :meth:`_handle_crash`).  The one case a size-1 blame set
        # arises from a shared batch is when every sibling finished —
        # and then the survivor *is* the task the dead worker was
        # running, so the precision rule stays sound.
        self._observe_exit_codes()
        blamed: list[_TaskState] = []
        for future, state in futures.items():
            if future in completed:
                continue
            try:
                payload = future.result(timeout=30.0)
            except (BrokenExecutor, CancelledError, TimeoutError):
                blamed.append(state)
            except Exception as exc:  # noqa: BLE001 - worker raised
                self._count("runner.worker_failures")
                finished.append((state, failure_payload(
                    exc, state.experiment_id,
                    state.task["seed"], state.task["fast"],
                    config_hash=state.task.get("config_hash"),
                    spec=state.task.get("spec"),
                )))
            else:
                finished.append((state, payload))
        return finished, blamed, reason

    # -- crash handling ------------------------------------------------

    def _handle_crash(
        self, blamed: list[_TaskState], reason: str
    ) -> list[tuple[_TaskState, dict | None]]:
        """Process one crash event; returns (state, quarantine-or-None)."""
        exit_code = self._harvest_exit_code()
        exit_signal = _signal_name(exit_code)
        self._note_rebuild(reason)
        if self._on_crash is not None:
            self._on_crash()
        verdicts: list[tuple[_TaskState, dict | None]] = []
        # A quarantine verdict needs *precise* blame: only when exactly
        # one task was in flight is the killer identified beyond doubt.
        # A batch blame just marks everyone involved as a suspect (and
        # suspects run solo from then on), so an innocent task that
        # shared a pool with a poison one is never quarantined for it.
        precise = len(blamed) == 1
        for state in blamed:
            state.crashes += 1
            state.task["worker_crashes"] = state.crashes
            state.exit_code = exit_code
            state.exit_signal = exit_signal
            state.reason = reason
            self._count("runner.worker_crashes")
            with self._span(
                "worker_crash",
                experiment_id=state.experiment_id,
                exit_code=exit_code,
                exit_signal=exit_signal,
                crashes=state.crashes,
                reason=reason,
            ):
                pass
            if precise and state.crashes >= self.max_worker_crashes:
                verdicts.append((state, self._quarantine(state)))
            else:
                verdicts.append((state, None))  # requeued
        if (
            self.degrade
            and not self._degraded
            and self._pool_rebuilds >= self.max_pool_rebuilds
        ):
            self._degraded = True
            self._count("runner.degraded")
            with self._span("degrade", pool_rebuilds=self._pool_rebuilds):
                pass
        return verdicts

    def _quarantine(self, state: _TaskState) -> dict:
        """The poison-task verdict: a structured crash record, no requeue."""
        self._count("runner.quarantined")
        quarantine_reason = (
            f"crash budget exhausted: killed {state.crashes} consecutive "
            f"worker(s) (last: {state.reason})"
        )
        error = WorkerCrashError(
            f"worker crashed running {state.experiment_id}; "
            f"task quarantined after {state.crashes} worker death(s)",
            exit_code=state.exit_code,
            exit_signal=state.exit_signal,
            attempt=state.crashes,
            quarantined=True,
            reason=quarantine_reason,
            experiment_id=state.experiment_id,
            seed=state.task["seed"],
            stage="run",
        )
        with self._span(
            "quarantine",
            experiment_id=state.experiment_id,
            exit_code=state.exit_code,
            exit_signal=state.exit_signal,
            crashes=state.crashes,
        ):
            pass
        return failure_payload(
            error, state.experiment_id, state.task["seed"],
            state.task["fast"],
            config_hash=state.task.get("config_hash"),
            spec=state.task.get("spec"),
        )

    # -- degraded (sequential, in-process) mode ------------------------

    def _run_degraded(
        self, queue: list[_TaskState]
    ) -> Iterator[tuple[int, dict]]:
        """Finish the remaining tasks in-process, in suite order.

        The worker protocol is reused verbatim — the task runs under
        its own tracer/metrics and returns a shard — so the runner's
        merge path cannot tell degraded completions from pool ones.
        Worker-only fault modes (``kill``) do not fire in this process,
        which is exactly the point of the ladder: an experiment that
        only dies under process isolation still gets its one honest
        in-process run before the suite gives up on it.
        """
        for state in sorted(queue, key=lambda s: s.index):
            try:
                payload = run_experiment_task(state.task)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                payload = failure_payload(
                    exc, state.experiment_id, state.task["seed"],
                    state.task["fast"],
                    config_hash=state.task.get("config_hash"),
                    spec=state.task.get("spec"),
                )
            yield state.index, payload

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self, batch_size: int) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=min(self.workers, max(batch_size, 1)),
                mp_context=self._mp_context,
                initializer=worker_init,
            )
        return self._pool

    def _note_rebuild(self, reason: str) -> None:
        """Tear down the broken pool and account for the rebuild."""
        self._shutdown_pool(wait_for_workers=False)
        self._pool_rebuilds += 1
        self._count("runner.pool_rebuilds")
        with self._span("pool_rebuild", rebuilds=self._pool_rebuilds,
                        reason=reason):
            pass

    def _observe_exit_codes(self) -> None:
        """Record exit codes of pool workers that have died so far.

        Called every poll tick and again when a break is detected: the
        executor's management thread reaps dead workers out of its
        process table on its own schedule, so waiting until crash
        handling to look would often find the evidence already gone.
        """
        processes = getattr(self._pool, "_processes", None) or {}
        for pid, process in list(processes.items()):
            if pid in self._seen_pids:
                continue
            code = process.exitcode
            if code not in (None, 0):
                self._seen_pids.add(pid)
                self._exit_codes.append(code)

    def _harvest_exit_code(self) -> int | None:
        """The most telling exit code among this crash event's corpses.

        Signal deaths (negative codes) outrank plain nonzero exits,
        and among those SIGTERM ranks last: when the pool breaks, the
        executor's own cleanup reaps innocent siblings with SIGTERM,
        so any *other* signal is the one that felled the worker.  The
        observed codes are consumed — the next crash event starts its
        evidence fresh.

        A freshly dead worker's exit code can lag its future's
        ``BrokenProcessPool`` by a few milliseconds (the executor's own
        join races this thread's ``waitpid``), so when nothing has been
        observed yet the harvest waits briefly — the pool is already
        broken, so the wait delays only the crash bookkeeping.
        """
        deadline = time.monotonic() + 1.0
        self._observe_exit_codes()
        while not self._exit_codes and time.monotonic() < deadline:
            time.sleep(0.05)
            self._observe_exit_codes()
        codes, self._exit_codes = self._exit_codes, []
        signals = [code for code in codes if code < 0]
        for code in signals:
            if code != -signal_module.SIGTERM:
                return code
        if signals:
            return signals[0]
        return codes[0] if codes else None

    def _terminate_workers(self) -> None:
        """Kill every pool worker (the missed-heartbeat escalation)."""
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            if process.exitcode is None:
                process.terminate()

    def _shutdown_pool(self, *, wait_for_workers: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait_for_workers, cancel_futures=True)
            self._pool = None

    # -- observability plumbing ----------------------------------------

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.count(name)

    def _span(self, name: str, **attributes):
        if self._tracer is not None:
            return self._tracer.span(name, **attributes)
        import contextlib

        return contextlib.nullcontext()
