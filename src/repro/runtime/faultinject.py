"""Deterministic fault injection.

A :class:`FaultInjector` owns a set of *injection points* — string
names for call sites (``"experiment:E6"``, ``"link:cdmx-gdl"``).  Code
under test routes calls through :meth:`FaultInjector.call`; the
injector then decides, deterministically from its seed, whether to let
the call through, raise, hang, or corrupt the return value.

Determinism is the point: the decision sequence for a point depends
only on ``(seed, point)``, so a failing schedule reproduces exactly,
and two injectors with the same seed fire identically.  This serves
two masters:

- the :class:`repro.runtime.runner.SuiteRunner` tests, which need
  "crash E6 twice, then succeed" to be a one-liner, and
- netsim resilience studies, where "links fail with probability p"
  must replay bit-for-bit across sweeps.

Example:
    >>> from repro.runtime.faultinject import FaultInjector
    >>> inj = FaultInjector(seed=0)
    >>> spec = inj.register("double", mode="raise", times=2)
    >>> def work():
    ...     return "ok"
    >>> for _ in range(2):
    ...     try:
    ...         inj.call("double", work)
    ...     except RuntimeError:
    ...         pass
    >>> inj.call("double", work)  # third call: fault budget spent
    'ok'
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["FaultInjector", "FaultSpec", "InjectedFault"]

#: Supported fault modes.
MODES = ("raise", "hang", "corrupt")


class InjectedFault(RuntimeError):
    """Default exception raised by a ``mode="raise"`` injection point."""


@dataclass
class FaultSpec:
    """Configuration of one injection point.

    Attributes:
        point: Injection-point name.
        mode: ``"raise"``, ``"hang"``, or ``"corrupt"``.
        probability: Chance each call trips the fault (1.0 = always).
        times: Stop firing after this many faults (None = unlimited).
        exception: Factory for the exception ``mode="raise"`` raises.
        hang_seconds: How long ``mode="hang"`` blocks before returning
            normally (a runner deadline should expire first).
        corrupt: Maps the true return value to the corrupted one for
            ``mode="corrupt"``; default replaces it with None.
        fired: How many faults this point has injected so far.
        calls: How many times this point has been reached.
    """

    point: str
    mode: str = "raise"
    probability: float = 1.0
    times: int | None = None
    exception: Callable[[], BaseException] = field(
        default=lambda: InjectedFault("injected fault")
    )
    hang_seconds: float = 60.0
    corrupt: Callable[[object], object] = field(default=lambda value: None)
    fired: int = 0
    calls: int = 0


class FaultInjector:
    """A seeded registry of injection points.

    Args:
        seed: Root seed.  Each point draws from its own
            ``random.Random`` stream keyed by ``(seed, point)``, so
            registration order and cross-point interleaving never
            change a point's decision sequence.
        sleep: Sleep function ``mode="hang"`` uses (injectable so tests
            can hang on a fake clock).
    """

    def __init__(
        self, seed: int = 0, *, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        self.seed = seed
        self._sleep = sleep
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}

    def register(
        self,
        point: str,
        *,
        mode: str = "raise",
        probability: float = 1.0,
        times: int | None = None,
        exception: Callable[[], BaseException] | None = None,
        hang_seconds: float = 60.0,
        corrupt: Callable[[object], object] | None = None,
    ) -> FaultSpec:
        """Arm ``point`` with a fault; returns the live :class:`FaultSpec`."""
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}; known: {MODES}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        spec = FaultSpec(
            point=point,
            mode=mode,
            probability=probability,
            times=times,
            hang_seconds=hang_seconds,
        )
        if exception is not None:
            spec.exception = exception
        if corrupt is not None:
            spec.corrupt = corrupt
        self._specs[point] = spec
        self._rngs[point] = random.Random(f"{self.seed}:{point}")
        return spec

    def clear(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        if point is None:
            self._specs.clear()
            self._rngs.clear()
        else:
            self._specs.pop(point, None)
            self._rngs.pop(point, None)

    def spec(self, point: str) -> FaultSpec | None:
        """The armed spec for ``point``, or None."""
        return self._specs.get(point)

    def should_fire(self, point: str) -> bool:
        """Decide (and record) whether ``point`` faults on this call.

        Advances the point's RNG stream, so calling it is part of the
        deterministic schedule — route real calls through
        :meth:`call` instead of probing separately.
        """
        spec = self._specs.get(point)
        if spec is None:
            return False
        spec.calls += 1
        if spec.times is not None and spec.fired >= spec.times:
            return False
        if spec.probability < 1.0:
            if self._rngs[point].random() >= spec.probability:
                return False
        spec.fired += 1
        return True

    def call(self, point: str, fn: Callable, *args, **kwargs):
        """Call ``fn(*args, **kwargs)`` through injection point ``point``.

        Depending on the armed spec this may raise, sleep past a
        runner deadline, or return a corrupted value; an unarmed point
        is a transparent passthrough.
        """
        if not self.should_fire(point):
            return fn(*args, **kwargs)
        spec = self._specs[point]
        if spec.mode == "raise":
            raise spec.exception()
        if spec.mode == "hang":
            self._sleep(spec.hang_seconds)
            return fn(*args, **kwargs)
        # mode == "corrupt": run the real call, then damage the result.
        return spec.corrupt(fn(*args, **kwargs))

    def export_specs(self) -> list[dict]:
        """The armed points as plain JSON-safe dicts.

        Used to carry an injector across process boundaries (the
        injector itself holds lambdas and is not picklable).  Custom
        ``exception`` and ``corrupt`` callables cannot travel: points
        using them are exported with defaults, so a rebuilt injector
        raises :class:`InjectedFault` / corrupts to None instead.
        ``fired``/``calls`` progress is included so a point's remaining
        fault budget survives the hop.
        """
        return [
            {
                "point": spec.point,
                "mode": spec.mode,
                "probability": spec.probability,
                "times": spec.times,
                "hang_seconds": spec.hang_seconds,
                "fired": spec.fired,
                "calls": spec.calls,
            }
            for _, spec in sorted(self._specs.items())
        ]

    @classmethod
    def from_specs(
        cls,
        specs: list[dict],
        seed: int = 0,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultInjector":
        """Rebuild an injector from :meth:`export_specs` output.

        The RNG streams restart from ``(seed, point)``; combined with
        the carried ``fired``/``calls`` counters this reproduces the
        exported injector's *budget*, which is what the parallel suite
        runner needs (each worker gets a fresh injector for its own
        experiment anyway).
        """
        injector = cls(seed=seed, sleep=sleep)
        for data in specs:
            spec = injector.register(
                data["point"],
                mode=data["mode"],
                probability=data["probability"],
                times=data["times"],
                hang_seconds=data["hang_seconds"],
            )
            spec.fired = data.get("fired", 0)
            spec.calls = data.get("calls", 0)
        return injector

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-point ``{"calls": n, "fired": m}`` counters."""
        return {
            point: {"calls": spec.calls, "fired": spec.fired}
            for point, spec in sorted(self._specs.items())
        }
