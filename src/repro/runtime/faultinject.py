"""Deterministic fault injection.

A :class:`FaultInjector` owns a set of *injection points* — string
names for call sites (``"experiment:E6"``, ``"link:cdmx-gdl"``).  Code
under test routes calls through :meth:`FaultInjector.call`; the
injector then decides, deterministically from its seed, whether to let
the call through, raise, hang, corrupt the return value, or inject a
process/disk fault: ``kill`` (the process dies by signal, like an OOM
kill or segfault), ``oom`` (a bounded allocation burst ending in
MemoryError), or ``enospc`` (``OSError(ENOSPC)``, a full disk).

Process-level faults exist to chaos-test the parallel runtime, so
``kill`` only fires inside a process marked as a pool worker
(:func:`mark_worker_process`); everywhere else it passes through.  An
injector can also be installed process-wide (:func:`use_fault_injector`)
so the :mod:`repro.io` write points can consult it without carrying an
injector argument — that is how ``enospc`` reaches the artifact cache
and checkpoint writes.

Determinism is the point: the decision sequence for a point depends
only on ``(seed, point)``, so a failing schedule reproduces exactly,
and two injectors with the same seed fire identically.  This serves
two masters:

- the :class:`repro.runtime.runner.SuiteRunner` tests, which need
  "crash E6 twice, then succeed" to be a one-liner, and
- netsim resilience studies, where "links fail with probability p"
  must replay bit-for-bit across sweeps.

Example:
    >>> from repro.runtime.faultinject import FaultInjector
    >>> inj = FaultInjector(seed=0)
    >>> spec = inj.register("double", mode="raise", times=2)
    >>> def work():
    ...     return "ok"
    >>> for _ in range(2):
    ...     try:
    ...         inj.call("double", work)
    ...     except RuntimeError:
    ...         pass
    >>> inj.call("double", work)  # third call: fault budget spent
    'ok'
"""

from __future__ import annotations

import contextlib
import errno
import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "DISK_DAMAGE_MODES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "current_fault_injector",
    "in_worker_process",
    "mark_worker_process",
    "use_fault_injector",
]

#: Supported fault modes.  The first three are *in-process* faults (an
#: exception, a stall, a damaged return value); ``kill``/``oom``/
#: ``enospc`` are *process/disk* faults for chaos testing the parallel
#: runtime: ``kill`` takes the whole worker process down with a signal,
#: ``oom`` performs a bounded allocation burst and then fails the
#: allocation, and ``enospc`` raises ``OSError(ENOSPC)`` as a full disk
#: would.  ``bitrot``/``truncate`` are *post-write damage* faults: they
#: never raise, and instead corrupt a **completed** file when the
#: writer offers it through :meth:`FaultInjector.damage_file` (the
#: artifact cache does, after every ``put``) — flipping one byte or
#: cutting the tail, exactly like silent media corruption or a torn
#: replication copy.
MODES = ("raise", "hang", "corrupt", "kill", "oom", "enospc", "bitrot", "truncate")

#: Modes that damage bytes already on disk instead of failing the call.
#: They are inert in :meth:`FaultInjector.call`/:meth:`~FaultInjector.check`
#: (the write succeeds untouched) and fire only through
#: :meth:`FaultInjector.damage_file`.
DISK_DAMAGE_MODES = ("bitrot", "truncate")

#: Process-level modes that only fire inside a pool worker process (a
#: ``kill`` in the coordinating parent would take the suite down with
#: it, which is the opposite of what chaos testing wants to observe).
WORKER_ONLY_MODES = ("kill",)

_in_worker_process = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (set by the worker initializer).

    Worker-only fault modes (``kill``) pass through untouched until
    this is called, so the same injector config is safe at
    ``workers=1`` — the determinism tests rely on that to compare a
    chaos run against its sequential twin.
    """
    global _in_worker_process
    _in_worker_process = True


def in_worker_process() -> bool:
    """True when this process was marked as a pool worker."""
    return _in_worker_process


_active_injector: "FaultInjector | None" = None


def current_fault_injector() -> "FaultInjector | None":
    """The process-wide injector consulted by instrumented write points."""
    return _active_injector


@contextlib.contextmanager
def use_fault_injector(injector: "FaultInjector | None") -> Iterator[None]:
    """Install ``injector`` process-wide for the duration of the block.

    Call sites that cannot carry an injector argument — the
    :mod:`repro.io` write paths above all — consult
    :func:`current_fault_injector` instead, so disk faults (``enospc``)
    can reach them without threading an injector through every API.
    ``None`` is accepted and leaves the previous injector installed,
    which lets callers wrap unconditionally.
    """
    global _active_injector
    if injector is None:
        yield
        return
    previous = _active_injector
    _active_injector = injector
    try:
        yield
    finally:
        _active_injector = previous


class InjectedFault(RuntimeError):
    """Default exception raised by a ``mode="raise"`` injection point."""


@dataclass
class FaultSpec:
    """Configuration of one injection point.

    Attributes:
        point: Injection-point name.
        mode: ``"raise"``, ``"hang"``, or ``"corrupt"``.
        probability: Chance each call trips the fault (1.0 = always).
        times: Stop firing after this many faults (None = unlimited).
        exception: Factory for the exception ``mode="raise"`` raises.
        hang_seconds: How long ``mode="hang"`` blocks before returning
            normally (a runner deadline should expire first).
        corrupt: Maps the true return value to the corrupted one for
            ``mode="corrupt"``; default replaces it with None.
        kill_signal: Signal ``mode="kill"`` delivers to its own process
            (default ``SIGKILL`` — uncatchable, like the OOM killer).
        oom_bytes: Size of the bounded allocation burst ``mode="oom"``
            performs before failing the allocation with MemoryError.
        fired: How many faults this point has injected so far.
        calls: How many times this point has been reached.
    """

    point: str
    mode: str = "raise"
    probability: float = 1.0
    times: int | None = None
    exception: Callable[[], BaseException] = field(
        default=lambda: InjectedFault("injected fault")
    )
    hang_seconds: float = 60.0
    corrupt: Callable[[object], object] = field(default=lambda value: None)
    kill_signal: int = signal.SIGKILL
    oom_bytes: int = 32 * 1024 * 1024
    fired: int = 0
    calls: int = 0


class FaultInjector:
    """A seeded registry of injection points.

    Args:
        seed: Root seed.  Each point draws from its own
            ``random.Random`` stream keyed by ``(seed, point)``, so
            registration order and cross-point interleaving never
            change a point's decision sequence.
        sleep: Sleep function ``mode="hang"`` uses (injectable so tests
            can hang on a fake clock).
    """

    def __init__(
        self, seed: int = 0, *, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        self.seed = seed
        self._sleep = sleep
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}

    def register(
        self,
        point: str,
        *,
        mode: str = "raise",
        probability: float = 1.0,
        times: int | None = None,
        exception: Callable[[], BaseException] | None = None,
        hang_seconds: float = 60.0,
        corrupt: Callable[[object], object] | None = None,
        kill_signal: int = signal.SIGKILL,
        oom_bytes: int = 32 * 1024 * 1024,
    ) -> FaultSpec:
        """Arm ``point`` with a fault; returns the live :class:`FaultSpec`."""
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}; known: {MODES}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        spec = FaultSpec(
            point=point,
            mode=mode,
            probability=probability,
            times=times,
            hang_seconds=hang_seconds,
            kill_signal=int(kill_signal),
            oom_bytes=oom_bytes,
        )
        if exception is not None:
            spec.exception = exception
        if corrupt is not None:
            spec.corrupt = corrupt
        self._specs[point] = spec
        self._rngs[point] = random.Random(f"{self.seed}:{point}")
        return spec

    def clear(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        if point is None:
            self._specs.clear()
            self._rngs.clear()
        else:
            self._specs.pop(point, None)
            self._rngs.pop(point, None)

    def spec(self, point: str) -> FaultSpec | None:
        """The armed spec for ``point``, or None."""
        return self._specs.get(point)

    def should_fire(self, point: str) -> bool:
        """Decide (and record) whether ``point`` faults on this call.

        Advances the point's RNG stream, so calling it is part of the
        deterministic schedule — route real calls through
        :meth:`call` instead of probing separately.
        """
        spec = self._specs.get(point)
        if spec is None:
            return False
        spec.calls += 1
        if spec.mode in WORKER_ONLY_MODES and not in_worker_process():
            # Process-killing faults target pool workers; in the
            # coordinating (or sequential) process they pass through so
            # the same config is comparable across worker counts.
            return False
        if spec.times is not None and spec.fired >= spec.times:
            return False
        if spec.probability < 1.0:
            if self._rngs[point].random() >= spec.probability:
                return False
        spec.fired += 1
        return True

    def call(self, point: str, fn: Callable, *args, **kwargs):
        """Call ``fn(*args, **kwargs)`` through injection point ``point``.

        Depending on the armed spec this may raise, sleep past a
        runner deadline, or return a corrupted value; an unarmed point
        is a transparent passthrough.
        """
        spec = self._specs.get(point)
        if spec is not None and spec.mode in DISK_DAMAGE_MODES:
            # Damage modes corrupt completed files via damage_file();
            # the call itself passes through without spending budget.
            return fn(*args, **kwargs)
        if not self.should_fire(point):
            return fn(*args, **kwargs)
        spec = self._specs[point]
        if spec.mode == "raise":
            raise spec.exception()
        if spec.mode == "hang":
            self._sleep(spec.hang_seconds)
            return fn(*args, **kwargs)
        if spec.mode == "kill":
            # The OOM-killer / segfault stand-in: the process dies here,
            # uncatchably, without unwinding or running cleanup.
            os.kill(os.getpid(), spec.kill_signal)
            time.sleep(60.0)  # pragma: no cover - signal delivery race
            raise InjectedFault("kill signal was not delivered")
        if spec.mode == "oom":
            # A bounded allocation burst (so the *host* survives the
            # test), then the failure an unbounded one would hit.
            ballast = bytearray(spec.oom_bytes)
            del ballast
            raise MemoryError(
                f"injected oom at {spec.point!r} "
                f"after a {spec.oom_bytes}-byte burst"
            )
        if spec.mode == "enospc":
            raise OSError(
                errno.ENOSPC,
                f"No space left on device (injected at {spec.point!r})",
            )
        # mode == "corrupt": run the real call, then damage the result.
        return spec.corrupt(fn(*args, **kwargs))

    def check(self, point: str) -> None:
        """Fire ``point``'s side-effect faults without wrapping a call.

        For write points that only need the *failure* half of
        :meth:`call` (raise / kill / enospc / oom); ``corrupt`` has no
        return value to damage here and is a no-op, ``hang`` stalls and
        then returns.
        """
        self.call(point, lambda: None)

    def damage_file(self, point: str, path: "str | os.PathLike") -> str | None:
        """Corrupt the completed file at ``path`` if ``point`` is armed.

        The post-write half of disk chaos: writers that land files
        atomically call this *after* the rename, offering the finished
        bytes for damage.  An armed ``bitrot`` spec XOR-flips one byte
        at a deterministic (seeded) offset; ``truncate`` cuts the file
        to a deterministic prefix.  Both leave a file that is complete
        as far as the filesystem is concerned — exactly the corruption
        that only end-to-end checksums can catch.

        Returns the mode fired (``"bitrot"``/``"truncate"``) or None
        when the point is unarmed, armed with a non-damage mode, out of
        budget, or the file is empty/absent.
        """
        spec = self._specs.get(point)
        if spec is None or spec.mode not in DISK_DAMAGE_MODES:
            return None
        if not self.should_fire(point):
            return None
        try:
            with open(path, "r+b") as handle:
                data = handle.read()
                if not data:
                    spec.fired -= 1  # nothing to damage; refund the budget
                    return None
                rng = self._rngs[point]
                if spec.mode == "bitrot":
                    offset = rng.randrange(len(data))
                    handle.seek(offset)
                    handle.write(bytes([data[offset] ^ 0xFF]))
                else:  # truncate: keep a strict prefix, possibly empty
                    handle.truncate(rng.randrange(len(data)))
                handle.flush()
                os.fsync(handle.fileno())
        except FileNotFoundError:
            spec.fired -= 1
            return None
        return spec.mode

    def export_specs(self) -> list[dict]:
        """The armed points as plain JSON-safe dicts.

        Used to carry an injector across process boundaries (the
        injector itself holds lambdas and is not picklable).  Custom
        ``exception`` and ``corrupt`` callables cannot travel: points
        using them are exported with defaults, so a rebuilt injector
        raises :class:`InjectedFault` / corrupts to None instead.
        ``fired``/``calls`` progress is included so a point's remaining
        fault budget survives the hop.
        """
        return [
            {
                "point": spec.point,
                "mode": spec.mode,
                "probability": spec.probability,
                "times": spec.times,
                "hang_seconds": spec.hang_seconds,
                "kill_signal": int(spec.kill_signal),
                "oom_bytes": spec.oom_bytes,
                "fired": spec.fired,
                "calls": spec.calls,
            }
            for _, spec in sorted(self._specs.items())
        ]

    @classmethod
    def from_specs(
        cls,
        specs: list[dict],
        seed: int = 0,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultInjector":
        """Rebuild an injector from :meth:`export_specs` output.

        The RNG streams restart from ``(seed, point)``; combined with
        the carried ``fired``/``calls`` counters this reproduces the
        exported injector's *budget*, which is what the parallel suite
        runner needs (each worker gets a fresh injector for its own
        experiment anyway).
        """
        injector = cls(seed=seed, sleep=sleep)
        for data in specs:
            spec = injector.register(
                data["point"],
                mode=data["mode"],
                probability=data["probability"],
                times=data["times"],
                hang_seconds=data["hang_seconds"],
                kill_signal=data.get("kill_signal", signal.SIGKILL),
                oom_bytes=data.get("oom_bytes", 32 * 1024 * 1024),
            )
            spec.fired = data.get("fired", 0)
            spec.calls = data.get("calls", 0)
        return injector

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-point ``{"calls": n, "fired": m}`` counters."""
        return {
            point: {"calls": spec.calls, "fired": spec.fired}
            for point, spec in sorted(self._specs.items())
        }
