"""Fault-tolerant suite runner.

``registry.run_all`` executes 13 experiments back-to-back; before this
module existed, one crash aborted the whole suite and an interrupted
run restarted from zero.  :class:`SuiteRunner` adds the three
properties a long campaign needs:

- **Isolation** — an experiment that raises becomes a recorded
  ``status="error"`` :class:`RunRecord`; the rest of the suite runs.
- **Retries** — a configurable :class:`RetryPolicy` with exponential
  backoff, deterministic jitter, and a per-experiment wall-clock
  deadline (enforced with a worker thread, surfaced as
  :class:`repro.errors.BudgetExceeded`).
- **Checkpoint/resume** — each completed experiment appends one JSONL
  record; pointing a new runner at the same checkpoint file skips
  experiments that already succeeded with the same ``(seed, fast)``.
- **Parallelism** — ``workers=N`` fans the suite out over a process
  pool, one task per experiment (see :mod:`repro.runtime.parallel`).
  Workers stream back their record plus an observability shard; the
  parent merges metrics associatively, re-parents worker spans under
  the suite span, and funnels every checkpoint append through itself —
  all in suite order, so a parallel run's records, checkpoint file,
  trace and metrics are deterministic and semantically identical to a
  sequential run of the same ``(seed, fast)``
  (:meth:`SuiteReport.fingerprint` is the equality tests use).
  Workers share expensive inputs through a
  :class:`repro.io.artifacts.ArtifactCache` (``cache_dir=``; a
  throwaway directory is used when none is configured).
- **Supervision** — the pool runs under a
  :class:`repro.runtime.supervisor.WorkerSupervisor`: a worker killed
  by the OS (OOM, segfault, SIGKILL) rebuilds the pool and requeues
  the in-flight experiments under a per-experiment crash budget
  (``max_worker_crashes``); poison tasks are quarantined with a
  structured :class:`repro.errors.WorkerCrashError` record, and
  repeated pool breakage degrades the remainder to sequential
  in-process execution, so ``keep_going`` runs always finish with a
  complete report.

The clock and sleep functions are injectable so retry timing is
testable with a fake clock, and a
:class:`repro.runtime.faultinject.FaultInjector` can be attached to
exercise every failure path deterministically.

The runner is fully instrumented against :mod:`repro.obs`: it opens a
span per suite / experiment / attempt, counts retries, timeouts,
checkpoint hits, and leaked deadline-worker threads, and can dump a
``cProfile`` capture per experiment (``profile_dir=``).  With the
default null tracer and null metrics installed all of that costs a few
attribute lookups per experiment.
"""

from __future__ import annotations

import hashlib
import json
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import (
    BudgetExceeded,
    CheckFailure,
    ExperimentError,
    UnknownExperimentError,
)
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get_experiment,
)
from repro.io.jsonl import append_jsonl, read_jsonl, salvage_jsonl_tail
from repro.runtime.faultinject import use_fault_injector
from repro.obs.metrics import current_metrics
from repro.obs.tracing import current_tracer

__all__ = ["RetryPolicy", "RunRecord", "SuiteReport", "SuiteRunner"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) a failed experiment is retried.

    Attributes:
        retries: Extra attempts after the first (0 = fail fast).
        backoff_base: Delay before the first retry, in seconds.
        backoff_factor: Multiplier applied per subsequent retry.
        max_backoff: Ceiling on any single delay.
        jitter: Fraction of the delay drawn uniformly at random and
            added, from a seeded stream (0.1 = up to +10%).
    """

    retries: int = 0
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    jitter: float = 0.1

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before retry ``retry_index`` (0-based), jitter included."""
        base = min(
            self.backoff_base * self.backoff_factor**retry_index,
            self.max_backoff,
        )
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class RunRecord:
    """Outcome of one experiment under the runner.

    Attributes:
        experiment_id: "E1".."E13".
        status: ``"ok"``, ``"error"``, or ``"timeout"``.
        seed: Seed the experiment ran with.
        fast: Whether fast problem sizes were used.
        attempts: Attempts consumed (1 = no retry needed).
        duration: Wall-clock seconds across all attempts.
        checks: Shape-check outcomes (empty unless status is "ok").
        error: Stringified exception for failed runs.
        error_type: Exception class name for failed runs.
        crash: Process-level evidence for runs that died with their
            worker (exit code/signal, crash count, quarantine verdict —
            see :meth:`repro.errors.WorkerCrashError.crash_info`); None
            for runs that failed, or succeeded, in Python.
        from_checkpoint: True when replayed from a checkpoint file
            rather than executed.
        result: The live :class:`ExperimentResult` (None when replayed).
        config_hash: The spec's ``config_hash()`` — the run's full
            configuration identity (None for experiments without a
            registered spec class, e.g. synthetic test ids).
        spec: The spec's ``to_dict()`` payload, for post-hoc inspection
            of exactly what ran (None when no spec was resolved).
    """

    experiment_id: str
    status: str
    seed: int
    fast: bool
    attempts: int = 1
    duration: float = 0.0
    checks: dict[str, bool] = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None
    crash: dict | None = None
    from_checkpoint: bool = False
    result: ExperimentResult | None = None
    config_hash: str | None = None
    spec: dict | None = None

    @property
    def shape_holds(self) -> bool:
        """True when the run succeeded and every shape-check passed."""
        return self.status == "ok" and all(self.checks.values())

    def to_record(self) -> dict:
        """The JSONL checkpoint representation (no live result)."""
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "seed": self.seed,
            "fast": self.fast,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
            "checks": self.checks,
            "shape_holds": self.shape_holds,
            "error": self.error,
            "error_type": self.error_type,
            "crash": self.crash,
            "config_hash": self.config_hash,
            "spec": self.spec,
        }

    @classmethod
    def from_record(cls, record: dict) -> "RunRecord":
        """Rebuild a (checkpoint-flagged) record from its JSONL form."""
        return cls(
            experiment_id=record["experiment_id"],
            status=record["status"],
            seed=record["seed"],
            fast=record["fast"],
            attempts=record.get("attempts", 1),
            duration=record.get("duration", 0.0),
            checks=record.get("checks", {}),
            error=record.get("error"),
            error_type=record.get("error_type"),
            crash=record.get("crash"),
            from_checkpoint=True,
            config_hash=record.get("config_hash"),
            spec=record.get("spec"),
        )


@dataclass(frozen=True)
class _Point:
    """One schedulable unit: an experiment id plus its resolved config.

    Registered experiments always carry a spec (resolved from the
    legacy ``(seed, fast)`` arguments when necessary), so their
    checkpoint and cache identity is the spec's ``config_hash()``.
    Unknown ids — synthetic experiments that tests monkeypatch in —
    have no spec class and fall back to legacy ``(seed, fast)``
    calling and keying.
    """

    experiment_id: str
    seed: int
    fast: bool
    spec: object | None = None

    @property
    def config_hash(self) -> str | None:
        return self.spec.config_hash() if self.spec is not None else None

    def spec_dict(self) -> dict | None:
        return self.spec.to_dict() if self.spec is not None else None

    def key(self) -> tuple:
        """The checkpoint/resume identity of this point."""
        if self.spec is not None:
            return ("spec", self.experiment_id, self.spec.config_hash())
        return ("legacy", self.experiment_id, self.seed, self.fast)


@dataclass
class SuiteReport:
    """All records from one :meth:`SuiteRunner.run_all` invocation."""

    records: list[RunRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def ok(self) -> bool:
        """True when every record succeeded and every shape held."""
        return all(r.shape_holds for r in self.records)

    @property
    def errors(self) -> list[RunRecord]:
        """Records that did not reach ``status="ok"``."""
        return [r for r in self.records if r.status != "ok"]

    def fingerprint(self) -> str:
        """A digest of the report's semantic content.

        Durations are zeroed first — wall-clock can never byte-match
        across runs — so two runs of the same suite with the same
        ``(seed, fast)`` fingerprint identically regardless of worker
        count.  This is the equality the parallel determinism tests
        assert.
        """
        payload = []
        for record in self.records:
            row = record.to_record()
            row["duration"] = 0.0
            payload.append(row)
        canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> dict:
        """A machine-readable summary (the ``--json-summary`` payload)."""
        return {
            "total": len(self.records),
            "ok": sum(r.status == "ok" for r in self.records),
            "error": sum(r.status == "error" for r in self.records),
            "timeout": sum(r.status == "timeout" for r in self.records),
            "shapes_hold": sum(r.shape_holds for r in self.records),
            "from_checkpoint": sum(r.from_checkpoint for r in self.records),
            "all_ok": self.ok,
            "records": [r.to_record() for r in self.records],
        }


class SuiteRunner:
    """Run experiments with isolation, retries, deadlines, checkpoints.

    Args:
        retries: Extra attempts per experiment (shorthand for
            ``policy=RetryPolicy(retries=...)``).
        policy: Full retry policy; overrides ``retries`` when given.
        timeout: Per-experiment wall-clock deadline in seconds,
            spanning all of its attempts (None = no deadline).
        keep_going: When True, a failed experiment is recorded and the
            suite continues; when False the failure re-raises after
            its retries are exhausted.
        checkpoint: JSONL path for checkpoint/resume (None = off).
        strict_checks: Treat failing shape-checks as a
            :class:`repro.errors.CheckFailure` (retryable) instead of
            a successful run with failing checks.
        seed: Seed for the deterministic retry jitter stream.
        fault_injector: Optional
            :class:`repro.runtime.faultinject.FaultInjector`; each
            experiment call is routed through the injection point
            ``"experiment:<id>"``.
        clock: Monotonic clock (injectable for tests).
        sleep: Sleep function used for backoff (injectable for tests).
        tracer: Tracer for suite/experiment/attempt spans.  None (the
            default) consults :func:`repro.obs.tracing.current_tracer`
            at run time — a no-op unless one was installed.
        metrics: Metrics registry for retry/timeout/checkpoint/leak
            counters; None consults
            :func:`repro.obs.metrics.current_metrics` at run time.
        profile_dir: When set, each experiment attempt runs under
            ``cProfile`` and dumps ``<dir>/<id>.pstats`` (later
            attempts overwrite earlier ones).
        workers: Default worker count for :meth:`run_all`.  1 runs the
            suite in-process; N > 1 fans experiments out over a process
            pool.  Injectable ``clock``/``sleep`` and custom fault
            callables do not cross the process boundary — parallel
            workers use real time and the default fault behaviors.
        cache_dir: Directory for the cross-process
            :class:`repro.io.artifacts.ArtifactCache` that shares the
            experiment corpus between workers and across runs.  None
            uses a throwaway temp directory when ``workers > 1`` (and
            no disk cache at all sequentially).
        max_worker_crashes: Per-experiment crash budget for parallel
            runs: a task that kills this many consecutive pool workers
            is quarantined with a :class:`repro.errors.WorkerCrashError`
            record instead of being requeued again (see
            :class:`repro.runtime.supervisor.WorkerSupervisor`).
        max_pool_rebuilds: After this many worker-crash events the
            supervisor degrades the remaining experiments to
            sequential in-process execution (when ``degrade`` allows).
        degrade: Allow the degradation ladder.  False keeps rebuilding
            pools until every experiment completes or is quarantined.
        heartbeat_timeout: Optional supervisor liveness bound: with no
            task completion for this many seconds, pool workers are
            presumed wedged and killed (None disables; in-worker
            ``timeout`` deadlines already cover ordinary hangs).
    """

    def __init__(
        self,
        *,
        retries: int = 0,
        policy: RetryPolicy | None = None,
        timeout: float | None = None,
        keep_going: bool = True,
        checkpoint: str | None = None,
        strict_checks: bool = False,
        seed: int = 0,
        fault_injector=None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        tracer=None,
        metrics=None,
        profile_dir: str | None = None,
        workers: int = 1,
        cache_dir: str | None = None,
        max_worker_crashes: int = 2,
        max_pool_rebuilds: int = 3,
        degrade: bool = True,
        heartbeat_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.policy = policy if policy is not None else RetryPolicy(retries=retries)
        self.timeout = timeout
        self.keep_going = keep_going
        self.checkpoint = checkpoint
        self.strict_checks = strict_checks
        self.fault_injector = fault_injector
        self.profile_dir = profile_dir
        self.workers = workers
        self.cache_dir = cache_dir
        self.max_worker_crashes = max_worker_crashes
        self.max_pool_rebuilds = max_pool_rebuilds
        self.degrade = degrade
        self.heartbeat_timeout = heartbeat_timeout
        self._clock = clock
        self._sleep = sleep
        self._jitter_seed = seed
        self._tracer = tracer
        self._metrics = metrics

    @property
    def tracer(self):
        """The tracer in effect (explicit, else the process-wide one)."""
        return self._tracer if self._tracer is not None else current_tracer()

    @property
    def metrics(self):
        """The metrics registry in effect (explicit, else process-wide)."""
        return self._metrics if self._metrics is not None else current_metrics()

    # -- point resolution ----------------------------------------------

    def _make_point(
        self, experiment_id: str, seed: int, fast: bool, spec=None
    ) -> _Point:
        """Resolve the spec for a legacy ``(id, seed, fast)`` request.

        Unknown ids (synthetic experiments injected by tests through a
        patched ``get_experiment``) have no spec class; they keep the
        legacy calling convention and keying.
        """
        if spec is None:
            from repro.experiments.registry import make_spec

            try:
                spec = make_spec(
                    experiment_id, "fast" if fast else "full", seed=seed
                )
            except UnknownExperimentError:
                spec = None
        return _Point(experiment_id, seed, fast, spec)

    @staticmethod
    def _point_from_spec(spec) -> _Point:
        """The point for an explicit spec (sweep engine entry path)."""
        experiment_id = type(spec).EXPERIMENT_ID
        if not experiment_id:
            raise UnknownExperimentError(
                f"{type(spec).__name__} declares no EXPERIMENT_ID"
            )
        fast = spec.origin_preset != "full"
        return _Point(experiment_id, spec.seed, fast, spec)

    # -- checkpointing -------------------------------------------------

    def _load_checkpoint(self) -> dict[tuple, RunRecord]:
        """Completed records keyed by point identity.

        Each ``ok`` row is stored under its legacy
        ``(experiment_id, seed, fast)`` key and — when the row carries
        a ``config_hash`` — under the spec-hash key as well, so both
        spec-driven points and legacy synthetic ids resume.

        A checkpoint whose final line was torn by a killed writer is
        salvaged first (:func:`repro.io.jsonl.salvage_jsonl_tail`):
        the torn tail is dropped — or, when the record survived and
        only its newline is missing, closed — so resume keeps every
        complete record *and* subsequent appends cannot concatenate
        onto the damage.  Salvage events are counted as
        ``runner.checkpoint_salvaged``.
        """
        if self.checkpoint is None:
            return {}
        if salvage_jsonl_tail(self.checkpoint) is not None:
            self.metrics.count("runner.checkpoint_salvaged")
        completed: dict[tuple, RunRecord] = {}
        try:
            rows = list(read_jsonl(self.checkpoint, on_error="skip"))
        except FileNotFoundError:
            return {}
        for row in rows:
            if row.get("status") != "ok":
                continue  # failed runs are retried on resume
            record = RunRecord.from_record(row)
            completed[
                ("legacy", record.experiment_id, record.seed, record.fast)
            ] = record
            if record.config_hash:
                completed[
                    ("spec", record.experiment_id, record.config_hash)
                ] = record
        return completed

    def _append_checkpoint(self, record: RunRecord) -> None:
        if self.checkpoint is not None:
            append_jsonl(self.checkpoint, [record.to_record()])

    # -- execution -----------------------------------------------------

    def _call_experiment(
        self,
        run_fn: Callable[..., ExperimentResult],
        point: _Point,
    ) -> ExperimentResult:
        if self.profile_dir is not None:
            # Imported lazily: profiling is opt-in and cProfile should
            # not load for ordinary runs.
            from repro.obs.profiler import profile_call

            return profile_call(
                self._call_experiment_inner,
                Path(self.profile_dir) / f"{point.experiment_id}.pstats",
                run_fn,
                point,
            )
        return self._call_experiment_inner(run_fn, point)

    def _call_experiment_inner(
        self,
        run_fn: Callable[..., ExperimentResult],
        point: _Point,
    ) -> ExperimentResult:
        if point.spec is not None:
            if self.fault_injector is not None:
                return self.fault_injector.call(
                    f"experiment:{point.experiment_id}", run_fn, point.spec
                )
            return run_fn(point.spec)
        if self.fault_injector is not None:
            return self.fault_injector.call(
                f"experiment:{point.experiment_id}",
                run_fn,
                seed=point.seed,
                fast=point.fast,
            )
        return run_fn(seed=point.seed, fast=point.fast)

    def _attempt(
        self,
        run_fn: Callable[..., ExperimentResult],
        point: _Point,
        deadline: float | None,
    ) -> ExperimentResult:
        """One attempt, deadline-enforced when a timeout is set."""
        if deadline is None:
            return self._call_experiment(run_fn, point)
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise BudgetExceeded(
                "deadline exhausted before attempt started",
                budget=self.timeout,
                experiment_id=point.experiment_id,
                seed=point.seed,
                stage="run",
            )
        outcome: dict[str, object] = {}

        def worker() -> None:
            try:
                outcome["result"] = self._call_experiment(run_fn, point)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                outcome["error"] = exc

        # A daemon thread, not a ThreadPoolExecutor: pool threads are
        # non-daemon, so a hung experiment would keep the interpreter
        # alive at exit even though the suite long since timed out.
        thread = threading.Thread(
            target=worker, name=f"repro-{point.experiment_id}", daemon=True
        )
        thread.start()
        thread.join(timeout=remaining)
        if thread.is_alive():
            # The worker is stuck inside the experiment; it dies with
            # the process (daemon), but surface the leak so a campaign
            # can see how many zombies it is carrying.
            self.metrics.count("runner.leaked_threads")
            from repro.runtime.faultinject import in_worker_process

            if in_worker_process():
                # In a pool worker there is no debugger to attach:
                # dump every thread's traceback now, so the campaign
                # log shows *where* the experiment was stuck.
                import faulthandler
                import sys

                faulthandler.dump_traceback(file=sys.stderr)
            raise BudgetExceeded(
                f"experiment exceeded its {self.timeout}s deadline",
                budget=self.timeout,
                spent=self.timeout,
                experiment_id=point.experiment_id,
                seed=point.seed,
                stage="run",
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]

    def run_one(
        self,
        experiment_id: str,
        seed: int = 0,
        fast: bool = True,
        spec=None,
    ) -> RunRecord:
        """Run one experiment under the full retry/deadline policy.

        ``spec`` — an :class:`repro.experiments.spec.ExperimentSpec` —
        pins the exact configuration; without it, the matching
        ``fast``/``full`` preset at ``seed`` is resolved from the
        registry (ids without a spec class keep the legacy calling
        convention).  Never raises when ``keep_going`` is True; the
        failure is captured in the returned record.  The run is
        wrapped in an ``experiment`` span with one ``attempt`` span
        per attempt, and the outcome lands in the ``runner.*``
        counters.
        """
        point = self._make_point(experiment_id, seed, fast, spec)
        return self._run_point(point)

    def _run_point(self, point: _Point) -> RunRecord:
        with self.tracer.span(
            "experiment",
            experiment_id=point.experiment_id,
            seed=point.seed,
            fast=point.fast,
            config_hash=point.config_hash,
        ) as span:
            record = self._run_one_instrumented(point)
            span.set_attribute("status", record.status)
            span.set_attribute("attempts", record.attempts)
            self.metrics.count(f"runner.status.{record.status}")
            if record.status == "timeout":
                self.metrics.count("runner.timeouts")
            return record

    def _run_one_instrumented(self, point: _Point) -> RunRecord:
        experiment_id, seed, fast = point.experiment_id, point.seed, point.fast
        started = self._clock()
        try:
            run_fn = get_experiment(experiment_id)
        except UnknownExperimentError as exc:
            record = RunRecord(
                experiment_id=experiment_id,
                status="error",
                seed=seed,
                fast=fast,
                attempts=0,
                duration=self._clock() - started,
                error=str(exc),
                error_type=type(exc).__name__,
                config_hash=point.config_hash,
                spec=point.spec_dict(),
            )
            if not self.keep_going:
                raise
            return record

        deadline = None if self.timeout is None else started + self.timeout
        rng = random.Random(f"{self._jitter_seed}:retry:{experiment_id}")
        last_exc: BaseException | None = None
        attempts = 0
        retries = max(0, self.policy.retries)  # a negative count means "none"
        for attempt in range(retries + 1):
            attempts = attempt + 1
            try:
                attempt_started = self._clock()
                with self.tracer.span(
                    "attempt", experiment_id=experiment_id, attempt=attempts
                ):
                    result = self._attempt(run_fn, point, deadline)
                self.metrics.observe(
                    "runner.attempt_seconds", self._clock() - attempt_started
                )
                if not isinstance(result, ExperimentResult):
                    raise ExperimentError(
                        f"experiment returned {type(result).__name__}, "
                        "expected ExperimentResult",
                        experiment_id=experiment_id,
                        seed=seed,
                        stage="run",
                    )
                if self.strict_checks and not result.shape_holds:
                    failed = tuple(
                        name for name, ok in sorted(result.checks.items()) if not ok
                    )
                    raise CheckFailure(
                        f"shape checks failed: {', '.join(failed)}",
                        failed_checks=failed,
                        experiment_id=experiment_id,
                        seed=seed,
                        stage="check",
                    )
                return RunRecord(
                    experiment_id=experiment_id,
                    status="ok",
                    seed=seed,
                    fast=fast,
                    attempts=attempts,
                    duration=self._clock() - started,
                    checks=dict(result.checks),
                    result=result,
                    config_hash=point.config_hash,
                    spec=point.spec_dict(),
                )
            except BudgetExceeded as exc:
                # The wall-clock budget spans attempts: no retry helps.
                last_exc = exc
                break
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                last_exc = exc
                if attempt < retries:
                    self.metrics.count("runner.retries")
                    self._sleep(self.policy.delay(attempt, rng))

        status = "timeout" if isinstance(last_exc, BudgetExceeded) else "error"
        record = RunRecord(
            experiment_id=experiment_id,
            status=status,
            seed=seed,
            fast=fast,
            attempts=attempts,
            duration=self._clock() - started,
            error=str(last_exc),
            error_type=type(last_exc).__name__,
            config_hash=point.config_hash,
            spec=point.spec_dict(),
        )
        if not self.keep_going:
            assert last_exc is not None
            raise last_exc
        return record

    def run_all(
        self,
        ids: Iterable[str] | None = None,
        seed: int = 0,
        fast: bool = True,
        workers: int | None = None,
    ) -> SuiteReport:
        """Run the suite (or ``ids``) under isolation; returns a report.

        With a checkpoint configured, experiments that already
        completed with the same configuration (``config_hash`` for
        spec-bearing experiments, ``(seed, fast)`` otherwise) are
        replayed from the file instead of re-executed, and every fresh
        outcome is appended as soon as it is known — a killed run
        resumes from the last completed experiment.  Resume filtering
        happens *before* dispatch, so a parallel resume never
        re-executes (or even schedules) completed experiments.

        ``workers`` overrides the runner's configured worker count for
        this call.  Parallel runs produce the same records, checkpoint
        contents, merged metrics, and (re-parented) trace structure as
        sequential ones — completions are buffered and flushed strictly
        in suite order.
        """
        experiment_ids = list(ids) if ids is not None else all_experiments()
        points = [
            self._make_point(experiment_id, seed, fast)
            for experiment_id in experiment_ids
        ]
        return self._execute_points(points, workers, {"seed": seed, "fast": fast})

    def run_points(self, specs: Iterable, workers: int | None = None) -> SuiteReport:
        """Run explicit spec instances (the sweep engine's entry point).

        Each spec becomes one schedulable point with checkpoint/cache
        identity ``config_hash()`` — the same experiment id may appear
        any number of times with different configurations.  Everything
        else (isolation, retries, checkpointing, parallel fan-out,
        supervision) behaves exactly as in :meth:`run_all`.
        """
        points = [self._point_from_spec(spec) for spec in specs]
        return self._execute_points(points, workers, {"sweep": True})

    def _execute_points(
        self,
        points: list[_Point],
        workers: int | None,
        span_attrs: dict,
    ) -> SuiteReport:
        from repro.experiments._corpus import configure_corpus_cache

        workers = self.workers if workers is None else workers
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        cache_dir = self.cache_dir
        temp_cache = None
        if workers > 1 and cache_dir is None:
            # Workers still need a rendezvous to build shared inputs
            # once; give them a throwaway cache for this run.
            temp_cache = tempfile.TemporaryDirectory(prefix="repro-cache-")
            cache_dir = temp_cache.name
        previous_cache = (
            configure_corpus_cache(cache_dir) if cache_dir is not None else None
        )
        try:
            # Installing the injector process-wide lets disk faults
            # (enospc at the io/artifact write points) fire in the
            # sequential path too, not just inside pool workers.
            with use_fault_injector(self.fault_injector), self.tracer.span(
                "suite",
                **span_attrs,
                experiments=len(points),
                workers=workers,
            ) as span:
                completed = self._load_checkpoint()
                if workers == 1:
                    report = self._run_all_sequential(points, completed)
                else:
                    report = self._run_all_parallel(
                        points, completed, workers, cache_dir, span
                    )
                span.set_attribute("ok", report.ok)
            return report
        finally:
            if cache_dir is not None:
                configure_corpus_cache(previous_cache)
            if temp_cache is not None:
                temp_cache.cleanup()

    def _run_all_sequential(
        self,
        points: list[_Point],
        completed: dict[tuple, RunRecord],
    ) -> SuiteReport:
        report = SuiteReport()
        for point in points:
            key = point.key()
            if key in completed:
                self.metrics.count("runner.checkpoint_hits")
                report.records.append(completed[key])
                continue
            record = self._run_point(point)
            self._append_checkpoint(record)
            report.records.append(record)
        return report

    def _run_all_parallel(
        self,
        points: list[_Point],
        completed: dict[tuple, RunRecord],
        workers: int,
        cache_dir: str | None,
        suite_span,
    ) -> SuiteReport:
        """Fan experiments out to a supervised process pool; merge in order.

        Every completion is buffered and flushed in suite position
        order: checkpoint appends (single writer — this process),
        metrics merges, and span adoption all happen at flush time, so
        their outcome is independent of which worker finished first.
        The pool itself runs under a
        :class:`repro.runtime.supervisor.WorkerSupervisor`: worker
        death rebuilds the pool and requeues the in-flight
        experiments, poison tasks are quarantined under the crash
        budget, and repeated breakage degrades to in-process execution
        — so a ``keep_going`` run always flushes a complete report.
        """
        import multiprocessing

        from repro.errors import ExperimentError as SuiteExperimentError
        from repro.errors import WorkerCrashError
        from repro.runtime.parallel import make_task, record_from_payload
        from repro.runtime.supervisor import WorkerSupervisor

        report = SuiteReport()
        replayed: dict[int, RunRecord] = {}
        pending: list[int] = []
        for index, point in enumerate(points):
            if point.key() in completed:
                self.metrics.count("runner.checkpoint_hits")
                replayed[index] = completed[point.key()]
            else:
                pending.append(index)
        suite_span_id = getattr(suite_span, "span_id", None)
        payloads: dict[int, dict] = {}
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        flushed = 0

        def flush_ready() -> None:
            """Emit records for every suite position that is ready."""
            nonlocal flushed
            while flushed < len(points):
                index = flushed
                if index in replayed:
                    report.records.append(replayed[index])
                elif index in payloads:
                    payload = payloads.pop(index)
                    record = record_from_payload(payload)
                    self.metrics.merge(payload["metrics"])
                    self.tracer.adopt(payload["spans"], parent_id=suite_span_id)
                    if not self.keep_going and record.status != "ok":
                        # Mirror sequential keep_going=False: the
                        # failing experiment is not checkpointed and
                        # the suite aborts.  The original exception
                        # object stayed in the worker; raise its
                        # recorded identity — with the process-level
                        # evidence intact when the worker died.
                        if record.crash is not None:
                            raise WorkerCrashError(
                                record.error or "worker process crashed",
                                exit_code=record.crash.get("exit_code"),
                                exit_signal=record.crash.get("exit_signal"),
                                attempt=record.crash.get("attempt"),
                                quarantined=record.crash.get(
                                    "quarantined", False
                                ),
                                reason=record.crash.get("reason"),
                                experiment_id=record.experiment_id,
                                seed=record.seed,
                                stage="run",
                            )
                        raise SuiteExperimentError(
                            f"{record.error_type}: {record.error}",
                            experiment_id=record.experiment_id,
                            seed=record.seed,
                            stage="run",
                        )
                    self._append_checkpoint(record)
                    report.records.append(record)
                else:
                    return
                flushed += 1

        on_crash = None
        if cache_dir is not None:
            from repro.io.artifacts import ArtifactCache

            cache = ArtifactCache(cache_dir, sweep=False)

            def on_crash() -> None:
                # Every pool writer is dead once a crash is detected,
                # so temp files under the cache are orphans regardless
                # of age.
                cache.sweep_orphans(max_age_seconds=0.0)

        supervisor = WorkerSupervisor(
            workers=min(workers, max(len(pending), 1)),
            mp_context=context,
            max_worker_crashes=self.max_worker_crashes,
            max_pool_rebuilds=self.max_pool_rebuilds,
            degrade=self.degrade,
            heartbeat_timeout=self.heartbeat_timeout,
            tracer=self.tracer,
            metrics=self.metrics,
            on_crash=on_crash,
        )
        tasks = [
            (index, make_task(self, points[index], cache_dir))
            for index in pending
        ]
        for index, payload in supervisor.run(tasks):
            payloads[index] = payload
            flush_ready()
        flush_ready()
        return report
