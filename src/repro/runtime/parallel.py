"""Worker-process side of parallel suite execution.

:meth:`repro.runtime.runner.SuiteRunner.run_all` with ``workers > 1``
dispatches one task per experiment to a process pool.  This module is
what runs inside the pool: a picklable task description goes in, and an
*observation shard* comes out — the experiment's checkpoint-shaped
record, its live :class:`~repro.experiments.registry.ExperimentResult`,
the span records of a worker-local tracer, and a worker-local metrics
snapshot.  The parent merges the shards deterministically (metrics via
the associative :meth:`~repro.obs.metrics.MetricsRegistry.merge`, spans
via :meth:`~repro.obs.tracing.Tracer.adopt`) in suite order, so the
combined observability output does not depend on completion order.

Workers always run with ``keep_going=True`` and no checkpoint: failure
handling and checkpoint appends are the parent's job (single writer).
Injectable clocks and sleeps do not cross the process boundary — a
worker uses real time — and a :class:`FaultInjector` travels as its
:meth:`~repro.runtime.faultinject.FaultInjector.export_specs` form, so
custom exception/corrupt callables are replaced by the defaults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runner import RunRecord, SuiteRunner


def worker_init() -> None:
    """Pool-worker initializer (runs once per worker process).

    Marks the process as a worker — arming worker-only fault modes
    like ``kill`` — and enables :mod:`faulthandler`, so a worker that
    genuinely hangs or dies on a fatal signal dumps the tracebacks of
    every thread to stderr instead of vanishing silently.
    """
    import faulthandler

    from repro.runtime.faultinject import mark_worker_process

    mark_worker_process()
    try:
        faulthandler.enable()
    except (ValueError, RuntimeError):  # pragma: no cover - odd stderr
        pass


def make_task(runner: "SuiteRunner", point, cache_dir: str | None) -> dict:
    """The picklable task for running one suite point in a worker.

    ``point`` is the runner's resolved ``_Point``: the spec (when the
    experiment has one) travels as its ``to_dict()`` payload plus
    ``config_hash`` and is reconstructed in the worker, so a sweep
    point's exact configuration survives pickling, crash-requeue, and
    pool rebuilds; legacy/synthetic points carry only ``(seed, fast)``.
    """
    policy = runner.policy
    fault = None
    if runner.fault_injector is not None:
        fault = {
            "seed": runner.fault_injector.seed,
            "specs": runner.fault_injector.export_specs(),
        }
    return {
        "experiment_id": point.experiment_id,
        "seed": point.seed,
        "fast": point.fast,
        "spec": point.spec_dict(),
        "config_hash": point.config_hash,
        "timeout": runner.timeout,
        "strict_checks": runner.strict_checks,
        "profile_dir": runner.profile_dir,
        "jitter_seed": runner._jitter_seed,
        "policy": {
            "retries": policy.retries,
            "backoff_base": policy.backoff_base,
            "backoff_factor": policy.backoff_factor,
            "max_backoff": policy.max_backoff,
            "jitter": policy.jitter,
        },
        "fault": fault,
        "cache_dir": cache_dir,
        # Bumped by the supervisor on requeue: how many workers this
        # task has already crashed.
        "worker_crashes": 0,
    }


def run_experiment_task(task: dict) -> dict:
    """Run one experiment in a pool worker; returns its shard.

    The shard is ``{"record", "result", "spans", "metrics"}`` where
    ``record`` is the :meth:`RunRecord.to_record` dict, ``result`` is
    the live (picklable) ExperimentResult or None, ``spans`` are the
    worker tracer's finished span records (the ``experiment`` span is
    the shard's root), and ``metrics`` is the worker registry snapshot.
    """
    # Imported here, not at module top: the pool pickles this function
    # by reference, and keeping the import local means a spawn-context
    # worker pays it once per process, after interpreter startup.
    from repro.experiments._corpus import configure_corpus_cache
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.obs.tracing import Tracer, use_tracer
    from repro.runtime.faultinject import FaultInjector, use_fault_injector
    from repro.runtime.runner import RetryPolicy, SuiteRunner

    if task["cache_dir"] is not None:
        configure_corpus_cache(task["cache_dir"])
    fault_injector = None
    if task["fault"] is not None:
        fault_injector = FaultInjector.from_specs(
            task["fault"]["specs"], seed=task["fault"]["seed"]
        )
        # A kill fault that fired is precisely what crashed the previous
        # worker(s) for this task, so credit those firings against the
        # point's budget — a "crash twice, then succeed" schedule then
        # behaves across requeues exactly like "raise twice" does across
        # in-process retries.
        crashes = task.get("worker_crashes", 0)
        if crashes:
            for spec in fault_injector._specs.values():
                if spec.mode == "kill":
                    spec.fired += crashes
                    spec.calls += crashes
    runner = SuiteRunner(
        policy=RetryPolicy(**task["policy"]),
        timeout=task["timeout"],
        keep_going=True,
        checkpoint=None,
        strict_checks=task["strict_checks"],
        seed=task["jitter_seed"],
        fault_injector=fault_injector,
        profile_dir=task["profile_dir"],
    )
    spec = None
    if task.get("spec") is not None:
        from repro.experiments.registry import spec_class

        spec = spec_class(task["experiment_id"]).from_dict(task["spec"])
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics), \
            use_fault_injector(fault_injector):
        record = runner.run_one(
            task["experiment_id"], seed=task["seed"], fast=task["fast"],
            spec=spec,
        )
    return {
        "record": record.to_record(),
        "result": record.result,
        "spans": [span.to_record() for span in tracer.finished],
        "metrics": metrics.snapshot(),
    }


def record_from_payload(payload: dict) -> "RunRecord":
    """Rebuild the parent-side :class:`RunRecord` from a worker shard."""
    from repro.runtime.runner import RunRecord

    record = RunRecord.from_record(payload["record"])
    record.from_checkpoint = False
    record.result = payload.get("result")
    return record


def failure_payload(exc: BaseException, experiment_id: str, seed: int,
                    fast: bool, config_hash: str | None = None,
                    spec: dict | None = None) -> dict:
    """A shard for a worker that died instead of returning one.

    A hard crash (e.g. ``BrokenProcessPool`` after a segfault or OOM
    kill) never produces a record, so the parent synthesizes an error
    record to keep the suite's isolation guarantee.  When ``exc`` is a
    :class:`repro.errors.WorkerCrashError` the record keeps the
    process-level evidence — exit signal/code, crash count, quarantine
    verdict — in its ``crash`` field instead of flattening everything
    to a generic message, so ``repro obs report`` (and anyone reading
    the checkpoint) can break down crash causes.
    """
    from repro.errors import WorkerCrashError

    crash = None
    if isinstance(exc, WorkerCrashError):
        crash = exc.crash_info()
        error = str(exc)
    else:
        error = f"worker process failed: {exc}"
    return {
        "record": {
            "experiment_id": experiment_id,
            "status": "error",
            "seed": seed,
            "fast": fast,
            "attempts": 0,
            "duration": 0.0,
            "checks": {},
            "error": error,
            "error_type": type(exc).__name__,
            "crash": crash,
            "config_hash": config_hash,
            "spec": spec,
        },
        "result": None,
        "spans": [],
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }
