"""Ordinal agreement and rater-comparison utilities.

Nominal kappa treats "severity 1 vs 5" and "severity 4 vs 5" as equally
wrong; when codes carry an order (severity scales, frequency ratings,
Likert-style intensity codes), weighted kappa is the standard fix.
This module adds:

- :func:`weighted_kappa` -- Cohen's kappa with linear or quadratic
  disagreement weights over an ordered category list.
- :func:`confusion_matrix` -- the underlying rater-vs-rater table.
- :func:`disagreement_pairs` -- the concrete units two raters disagreed
  on, which is what a codebook reconciliation meeting actually reviews.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

Label = Hashable


def confusion_matrix(
    a: Sequence[Label],
    b: Sequence[Label],
    categories: Sequence[Label],
) -> np.ndarray:
    """Rater-vs-rater confusion counts.

    ``matrix[i][j]`` counts units where rater A chose ``categories[i]``
    and rater B chose ``categories[j]``.

    Raises ValueError on unequal lengths or labels outside
    ``categories``.
    """
    if len(a) != len(b):
        raise ValueError(f"rating lengths differ: {len(a)} vs {len(b)}")
    index = {category: i for i, category in enumerate(categories)}
    if len(index) != len(categories):
        raise ValueError("categories contains duplicates")
    matrix = np.zeros((len(categories), len(categories)), dtype=np.int64)
    for left, right in zip(a, b):
        if left not in index or right not in index:
            raise ValueError(f"label outside categories: {left!r} / {right!r}")
        matrix[index[left], index[right]] += 1
    return matrix


def weighted_kappa(
    a: Sequence[Label],
    b: Sequence[Label],
    categories: Sequence[Label],
    weights: str = "quadratic",
) -> float:
    """Cohen's weighted kappa over ordered categories.

    Args:
        a, b: The two raters' labels per unit.
        categories: Categories in their intrinsic order (least to most).
        weights: "linear" (|i - j| / (k-1)) or "quadratic"
            (((i - j) / (k-1))**2) disagreement weights.

    Returns:
        Weighted kappa in [-1, 1].  With one category, or identical
        ratings under degenerate marginals, returns 1.0.

    >>> weighted_kappa([1, 2, 3], [1, 2, 3], [1, 2, 3])
    1.0
    """
    if weights not in ("linear", "quadratic"):
        raise ValueError(f"weights must be linear/quadratic, got {weights!r}")
    if not a:
        raise ValueError("need at least one rated unit")
    k = len(categories)
    if k == 1:
        return 1.0
    observed = confusion_matrix(a, b, categories).astype(float)
    n = observed.sum()
    observed /= n

    indices = np.arange(k)
    distance = np.abs(indices[:, None] - indices[None, :]) / (k - 1)
    weight_matrix = distance if weights == "linear" else distance**2

    row_marginals = observed.sum(axis=1)
    column_marginals = observed.sum(axis=0)
    expected = np.outer(row_marginals, column_marginals)

    observed_disagreement = float((weight_matrix * observed).sum())
    expected_disagreement = float((weight_matrix * expected).sum())
    if expected_disagreement == 0.0:
        return 1.0 if observed_disagreement == 0.0 else 0.0
    return 1.0 - observed_disagreement / expected_disagreement


def disagreement_pairs(
    a: Sequence[Label],
    b: Sequence[Label],
    unit_ids: Sequence[str] | None = None,
) -> list[tuple[str, Label, Label]]:
    """Units where the raters disagree, as ``(unit_id, a_label, b_label)``.

    Args:
        a, b: The two raters' labels per unit.
        unit_ids: Ids per unit (default: stringified indices).

    The return value is what a reconciliation session walks through:
    each row is one conversation about the codebook.
    """
    if len(a) != len(b):
        raise ValueError(f"rating lengths differ: {len(a)} vs {len(b)}")
    ids = list(unit_ids) if unit_ids is not None else [str(i) for i in range(len(a))]
    if len(ids) != len(a):
        raise ValueError("unit_ids length must match ratings")
    return [
        (unit_id, left, right)
        for unit_id, left, right in zip(ids, a, b)
        if left != right
    ]
