"""Documents, coded segments, and coding sessions.

A :class:`Document` is any unit of qualitative data — an interview
transcript, a field note, a hallway-conversation memo.  A
:class:`CodedSegment` records that a rater applied a code to a character
span of a document.  A :class:`CodingSession` collects segments across
documents and raters and offers the query surface the analysis modules
(agreement, co-occurrence, saturation) are built on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.qualcoding.codebook import Codebook


@dataclass(frozen=True, slots=True)
class Document:
    """A unit of qualitative data.

    Attributes:
        doc_id: Unique identifier ("interview-07", "fieldnote-2024-03-02").
        text: Full text content.
        kind: Free-form data kind ("interview", "fieldnote", "memo", ...).
        metadata: Arbitrary key/value context (site, date, participant).
    """

    doc_id: str
    text: str
    kind: str = "interview"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("doc_id must be non-empty")


@dataclass(frozen=True, slots=True)
class CodedSegment:
    """One application of a code to a span of a document.

    Attributes:
        doc_id: The coded document.
        code: Code name (should exist in the session codebook).
        start: Span start offset (inclusive).
        end: Span end offset (exclusive); must be > start.
        rater: Identifier of the person (or simulator) who coded.
        memo: Optional analytic memo attached to the act of coding.
    """

    doc_id: str
    code: str
    start: int
    end: int
    rater: str
    memo: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"segment span must be non-empty: start={self.start} end={self.end}"
            )
        if self.start < 0:
            raise ValueError(f"segment start must be >= 0, got {self.start}")

    def overlaps(self, other: "CodedSegment") -> bool:
        """True when both segments cover at least one common character."""
        return (
            self.doc_id == other.doc_id
            and self.start < other.end
            and other.start < self.end
        )

    def text_in(self, document: Document) -> str:
        """The quoted text this segment covers in ``document``."""
        if document.doc_id != self.doc_id:
            raise ValueError(
                f"segment belongs to {self.doc_id!r}, not {document.doc_id!r}"
            )
        return document.text[self.start : self.end]


class CodingSession:
    """A body of coded data: documents + codebook + segments.

    Example:
        >>> from repro.qualcoding import Codebook
        >>> book = Codebook("demo")
        >>> _ = book.add("trust", "Expressions of trust in operators")
        >>> session = CodingSession(book)
        >>> session.add_document(Document("i1", "I trust the local operator."))
        >>> _ = session.code("i1", "trust", 2, 27, rater="r1")
        >>> session.codes_for_document("i1")
        ['trust']
    """

    def __init__(self, codebook: Codebook) -> None:
        self.codebook = codebook
        self._documents: dict[str, Document] = {}
        self._segments: list[CodedSegment] = []

    # -- documents ---------------------------------------------------------

    def add_document(self, document: Document) -> None:
        """Register a document; rejects duplicate ids."""
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate document id: {document.doc_id!r}")
        self._documents[document.doc_id] = document

    def document(self, doc_id: str) -> Document:
        """Look up a document by id."""
        return self._documents[doc_id]

    def documents(self) -> list[Document]:
        """All documents, sorted by id."""
        return sorted(self._documents.values(), key=lambda d: d.doc_id)

    # -- coding ------------------------------------------------------------

    def code(
        self,
        doc_id: str,
        code: str,
        start: int,
        end: int,
        rater: str,
        memo: str = "",
    ) -> CodedSegment:
        """Apply ``code`` to ``doc_id[start:end]`` on behalf of ``rater``."""
        if doc_id not in self._documents:
            raise KeyError(f"unknown document: {doc_id!r}")
        if code not in self.codebook:
            raise KeyError(f"code not in codebook: {code!r}")
        document = self._documents[doc_id]
        if end > len(document.text):
            raise ValueError(
                f"span end {end} exceeds document length {len(document.text)}"
            )
        segment = CodedSegment(doc_id, code, start, end, rater, memo)
        self._segments.append(segment)
        return segment

    def add_segment(self, segment: CodedSegment) -> None:
        """Add a pre-built segment with the same validation as :meth:`code`."""
        self.code(
            segment.doc_id,
            segment.code,
            segment.start,
            segment.end,
            segment.rater,
            segment.memo,
        )

    # -- queries -----------------------------------------------------------

    def segments(
        self,
        doc_id: str | None = None,
        code: str | None = None,
        rater: str | None = None,
    ) -> list[CodedSegment]:
        """Segments filtered by any combination of document, code, rater."""
        result = [
            s
            for s in self._segments
            if (doc_id is None or s.doc_id == doc_id)
            and (code is None or s.code == code)
            and (rater is None or s.rater == rater)
        ]
        return sorted(result, key=lambda s: (s.doc_id, s.start, s.end, s.code))

    def raters(self) -> list[str]:
        """All rater identifiers seen so far, sorted."""
        return sorted({s.rater for s in self._segments})

    def codes_for_document(self, doc_id: str, rater: str | None = None) -> list[str]:
        """Distinct codes applied to ``doc_id`` (optionally by one rater)."""
        return sorted(
            {s.code for s in self.segments(doc_id=doc_id, rater=rater)}
        )

    def code_frequencies(self, rater: str | None = None) -> dict[str, int]:
        """Segment counts per code, including zero-count codebook entries."""
        counts: dict[str, int] = {name: 0 for name in self.codebook.names()}
        for segment in self.segments(rater=rater):
            counts[segment.code] = counts.get(segment.code, 0) + 1
        return counts

    def document_code_matrix(
        self, rater: str | None = None
    ) -> dict[str, set[str]]:
        """Map each document id to the set of codes applied to it."""
        matrix: dict[str, set[str]] = {d.doc_id: set() for d in self.documents()}
        for segment in self.segments(rater=rater):
            matrix[segment.doc_id].add(segment.code)
        return matrix

    def quotes(self, code: str, rater: str | None = None) -> list[str]:
        """The quoted texts for every application of ``code``."""
        return [
            s.text_in(self._documents[s.doc_id])
            for s in self.segments(code=code, rater=rater)
        ]

    def remap_merged_codes(self) -> int:
        """Rewrite segments whose codes were merged in the codebook.

        Returns the number of segments rewritten.  Call after
        :meth:`repro.qualcoding.codebook.Codebook.merge`.
        """
        rewritten = 0
        updated: list[CodedSegment] = []
        for segment in self._segments:
            resolved = self.codebook.resolve(segment.code)
            if resolved != segment.code:
                segment = CodedSegment(
                    segment.doc_id,
                    resolved,
                    segment.start,
                    segment.end,
                    segment.rater,
                    segment.memo,
                )
                rewritten += 1
            updated.append(segment)
        self._segments = updated
        return rewritten

    def iter_units(
        self, raters: Iterable[str], doc_ids: Iterable[str] | None = None
    ) -> Iterator[tuple[str, dict[str, set[str]]]]:
        """Yield ``(doc_id, {rater: codes})`` for agreement computations.

        Documents are the units of analysis; each unit carries the set of
        codes each requested rater applied to it.
        """
        target_docs = sorted(doc_ids) if doc_ids is not None else [
            d.doc_id for d in self.documents()
        ]
        rater_list = list(raters)
        per_rater: dict[str, dict[str, set[str]]] = {
            r: defaultdict(set) for r in rater_list
        }
        for segment in self._segments:
            if segment.rater in per_rater:
                per_rater[segment.rater][segment.doc_id].add(segment.code)
        for doc_id in target_docs:
            yield doc_id, {r: set(per_rater[r].get(doc_id, set())) for r in rater_list}
