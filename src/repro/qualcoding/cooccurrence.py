"""Code co-occurrence analysis.

Codes that repeatedly appear in the same documents (or overlapping
spans) reveal the relational structure of the data — e.g. "cost
barriers" co-occurring with "maintenance burden" across community
network interviews.  The co-occurrence graph is the standard input to
theme construction.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx
import numpy as np

from repro.qualcoding.segments import CodingSession


def cooccurrence_matrix(
    session: CodingSession,
    rater: str | None = None,
    level: str = "document",
) -> tuple[list[str], np.ndarray]:
    """Count pairwise code co-occurrences.

    Args:
        session: The coded data.
        rater: Restrict to one rater's segments (default: all).
        level: "document" counts codes co-applied to the same document;
            "span" counts codes on overlapping character spans.

    Returns:
        ``(codes, matrix)`` where ``matrix[i][j]`` is the number of
        contexts in which codes ``i`` and ``j`` co-occur.  The diagonal
        holds each code's own context count.
    """
    if level not in ("document", "span"):
        raise ValueError(f"level must be 'document' or 'span', got {level!r}")
    codes = session.codebook.names()
    index = {code: i for i, code in enumerate(codes)}
    matrix = np.zeros((len(codes), len(codes)), dtype=np.int64)

    if level == "document":
        for doc_codes in session.document_code_matrix(rater=rater).values():
            present = sorted(doc_codes)
            for code in present:
                matrix[index[code], index[code]] += 1
            for a, b in combinations(present, 2):
                matrix[index[a], index[b]] += 1
                matrix[index[b], index[a]] += 1
    else:
        for document in session.documents():
            segments = session.segments(doc_id=document.doc_id, rater=rater)
            for seg in segments:
                matrix[index[seg.code], index[seg.code]] += 1
            for left, right in combinations(segments, 2):
                if left.code != right.code and left.overlaps(right):
                    matrix[index[left.code], index[right.code]] += 1
                    matrix[index[right.code], index[left.code]] += 1
    return codes, matrix


def cooccurrence_graph(
    session: CodingSession,
    rater: str | None = None,
    level: str = "document",
    min_weight: int = 1,
) -> nx.Graph:
    """Build a weighted co-occurrence graph.

    Nodes are codes (with a ``count`` attribute); edges carry ``weight``
    (raw co-occurrence count) and ``jaccard`` (normalized overlap).
    Edges below ``min_weight`` are dropped.
    """
    codes, matrix = cooccurrence_matrix(session, rater=rater, level=level)
    graph = nx.Graph()
    for i, code in enumerate(codes):
        graph.add_node(code, count=int(matrix[i, i]))
    for i, a in enumerate(codes):
        for j in range(i + 1, len(codes)):
            weight = int(matrix[i, j])
            if weight < min_weight:
                continue
            union = matrix[i, i] + matrix[j, j] - weight
            jaccard = weight / union if union > 0 else 0.0
            graph.add_edge(a, codes[j], weight=weight, jaccard=float(jaccard))
    return graph
