"""Qualitative coding substrate.

Section 5.2 of the paper recommends that informal conversations and
interviews be "formally coded" — the standard qualitative-research
technique of organizing unstructured data, identifying patterns, and
deriving themes.  This package implements that technique end to end:

- :mod:`repro.qualcoding.codebook` -- hierarchical codebooks.
- :mod:`repro.qualcoding.segments` -- documents, segments, and coding acts.
- :mod:`repro.qualcoding.agreement` -- inter-rater reliability statistics
  (percent agreement, Cohen's kappa, Fleiss' kappa, Krippendorff's alpha).
- :mod:`repro.qualcoding.cooccurrence` -- code co-occurrence networks.
- :mod:`repro.qualcoding.saturation` -- code-saturation curves.
- :mod:`repro.qualcoding.themes` -- clustering coded segments into themes.
"""

from repro.qualcoding.codebook import Code, Codebook
from repro.qualcoding.segments import CodedSegment, Document, CodingSession
from repro.qualcoding.agreement import (
    percent_agreement,
    cohens_kappa,
    fleiss_kappa,
    krippendorff_alpha,
    kappa_interpretation,
    AgreementReport,
    compare_raters,
)
from repro.qualcoding.cooccurrence import cooccurrence_matrix, cooccurrence_graph
from repro.qualcoding.saturation import (
    SaturationCurve,
    saturation_curve,
    saturation_point,
)
from repro.qualcoding.themes import Theme, extract_themes
from repro.qualcoding.ordinal import (
    weighted_kappa,
    confusion_matrix,
    disagreement_pairs,
)

__all__ = [
    "Code",
    "Codebook",
    "CodedSegment",
    "Document",
    "CodingSession",
    "percent_agreement",
    "cohens_kappa",
    "fleiss_kappa",
    "krippendorff_alpha",
    "kappa_interpretation",
    "AgreementReport",
    "compare_raters",
    "cooccurrence_matrix",
    "cooccurrence_graph",
    "SaturationCurve",
    "saturation_curve",
    "saturation_point",
    "Theme",
    "extract_themes",
    "weighted_kappa",
    "confusion_matrix",
    "disagreement_pairs",
]
