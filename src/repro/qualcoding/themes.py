"""Theme extraction from coded data.

Themes are the analytic output of qualitative coding: clusters of codes
that travel together across the data.  We build them by running
connected-component / community detection over the code co-occurrence
graph, then naming each theme by its highest-degree code and attaching
representative quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.qualcoding.cooccurrence import cooccurrence_graph
from repro.qualcoding.segments import CodingSession


@dataclass(frozen=True, slots=True)
class Theme:
    """A cluster of co-occurring codes.

    Attributes:
        name: Label (the most connected member code).
        codes: Member codes, sorted.
        weight: Total internal co-occurrence weight.
        quotes: Representative quoted segments (up to a small cap).
    """

    name: str
    codes: tuple[str, ...]
    weight: int
    quotes: tuple[str, ...] = field(default=())

    @property
    def size(self) -> int:
        """Number of member codes."""
        return len(self.codes)


def _central_code(graph: nx.Graph, members: set[str]) -> str:
    """The member with the highest weighted degree (ties: alphabetical)."""
    sub = graph.subgraph(members)
    return min(
        members,
        key=lambda c: (-sub.degree(c, weight="weight"), c),
    )


def extract_themes(
    session: CodingSession,
    min_cooccurrence: int = 2,
    min_size: int = 2,
    quotes_per_theme: int = 3,
    rater: str | None = None,
) -> list[Theme]:
    """Cluster codes into themes via greedy modularity communities.

    Args:
        session: The coded data.
        min_cooccurrence: Drop co-occurrence edges below this weight.
        min_size: Drop themes with fewer member codes than this.
        quotes_per_theme: Representative quotes attached per theme.
        rater: Restrict to one rater's coding.

    Returns:
        Themes sorted by descending internal weight, then name.
    """
    graph = cooccurrence_graph(session, rater=rater, min_weight=min_cooccurrence)
    # Isolated nodes cannot form themes; ignore them.
    connected = graph.subgraph(
        [n for n in graph if graph.degree(n) > 0]
    )
    if connected.number_of_nodes() == 0:
        return []
    communities = nx.community.greedy_modularity_communities(
        connected, weight="weight"
    )
    themes: list[Theme] = []
    for members in communities:
        members = set(members)
        if len(members) < min_size:
            continue
        sub = connected.subgraph(members)
        weight = int(sum(d["weight"] for _, _, d in sub.edges(data=True)))
        name = _central_code(connected, members)
        quotes: list[str] = []
        for code in sorted(members):
            for quote in session.quotes(code, rater=rater):
                quotes.append(quote)
                if len(quotes) >= quotes_per_theme:
                    break
            if len(quotes) >= quotes_per_theme:
                break
        themes.append(
            Theme(
                name=name,
                codes=tuple(sorted(members)),
                weight=weight,
                quotes=tuple(quotes),
            )
        )
    themes.sort(key=lambda t: (-t.weight, t.name))
    return themes
