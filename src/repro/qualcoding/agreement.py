"""Inter-rater reliability statistics.

When the paper recommends that conversations be "formally coded"
(Section 5.2, footnote 1), the reproducibility of that coding is what
makes it *formal*: two raters applying the same codebook to the same
data should mostly agree, and the residual disagreement should be
quantified with chance-corrected statistics.  This module implements the
standard battery:

- percent (raw) agreement,
- Cohen's kappa (two raters, nominal categories),
- Fleiss' kappa (many raters, nominal categories),
- Krippendorff's alpha (any number of raters, missing data, nominal
  metric),

plus the conventional Landis & Koch interpretation bands and a
convenience :func:`compare_raters` that runs the battery over a
:class:`~repro.qualcoding.segments.CodingSession`.

All functions operate on *labels per unit*: ``ratings[i][j]`` is the
label rater ``j`` assigned to unit ``i`` (None for missing).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.qualcoding.segments import CodingSession

Label = Hashable


def _validate_pair(a: Sequence[Label], b: Sequence[Label]) -> None:
    if len(a) != len(b):
        raise ValueError(f"rating lengths differ: {len(a)} vs {len(b)}")
    if not a:
        raise ValueError("need at least one rated unit")


def percent_agreement(a: Sequence[Label], b: Sequence[Label]) -> float:
    """Fraction of units on which two raters assigned the same label.

    >>> percent_agreement(["x", "y", "x"], ["x", "y", "y"])
    0.6666666666666666
    """
    _validate_pair(a, b)
    matches = sum(1 for left, right in zip(a, b) if left == right)
    return matches / len(a)


def cohens_kappa(a: Sequence[Label], b: Sequence[Label]) -> float:
    """Cohen's kappa for two raters over nominal labels.

    ``kappa = (p_o - p_e) / (1 - p_e)`` where ``p_o`` is observed
    agreement and ``p_e`` the agreement expected if both raters labeled
    at random with their own marginal distributions.  Returns 1.0 when
    both raters agree perfectly *and* chance agreement is 1 (the single
    degenerate case where the formula is 0/0 but agreement is total).
    """
    _validate_pair(a, b)
    n = len(a)
    observed = percent_agreement(a, b)
    marginal_a = Counter(a)
    marginal_b = Counter(b)
    expected = sum(
        (marginal_a[label] / n) * (marginal_b[label] / n)
        for label in set(marginal_a) | set(marginal_b)
    )
    if expected >= 1.0:
        return 1.0 if observed == 1.0 else 0.0
    return (observed - expected) / (1.0 - expected)


def fleiss_kappa(ratings: Sequence[Sequence[Label]]) -> float:
    """Fleiss' kappa for a fixed number of raters per unit.

    Args:
        ratings: ``ratings[i]`` is the list of labels the raters assigned
            to unit ``i``.  Every unit must have the same number (>= 2)
            of ratings; use :func:`krippendorff_alpha` for missing data.
    """
    if not ratings:
        raise ValueError("need at least one rated unit")
    n_raters = len(ratings[0])
    if n_raters < 2:
        raise ValueError("Fleiss' kappa needs at least 2 raters per unit")
    if any(len(row) != n_raters for row in ratings):
        raise ValueError("all units must have the same number of ratings")

    categories = sorted({label for row in ratings for label in row}, key=repr)
    if len(categories) == 1:
        return 1.0
    n_units = len(ratings)

    # Per-unit agreement P_i and per-category proportions p_j.
    category_totals = Counter()
    unit_agreements = []
    for row in ratings:
        counts = Counter(row)
        category_totals.update(counts)
        agreement = sum(c * (c - 1) for c in counts.values())
        unit_agreements.append(agreement / (n_raters * (n_raters - 1)))

    p_bar = sum(unit_agreements) / n_units
    total = n_units * n_raters
    p_e = sum((category_totals[c] / total) ** 2 for c in categories)
    if p_e >= 1.0:
        return 1.0 if p_bar == 1.0 else 0.0
    return (p_bar - p_e) / (1.0 - p_e)


def krippendorff_alpha(
    ratings: Sequence[Sequence[Label | None]],
) -> float:
    """Krippendorff's alpha with the nominal difference metric.

    Handles missing ratings (None) and any number of raters.  Units with
    fewer than two non-missing ratings are dropped, per the standard
    definition.

    Args:
        ratings: ``ratings[i][j]`` is rater ``j``'s label for unit ``i``
            or None when rater ``j`` did not rate unit ``i``.

    Returns:
        Alpha in [-1, 1]; 1.0 is perfect reliability, 0.0 is chance.
    """
    units: list[list[Label]] = []
    for row in ratings:
        present = [label for label in row if label is not None]
        if len(present) >= 2:
            units.append(present)
    if not units:
        raise ValueError("no unit has two or more non-missing ratings")

    # Observed disagreement: within-unit pairable mismatches.
    total_pairable = sum(len(u) for u in units)
    observed = 0.0
    for unit in units:
        m = len(unit)
        counts = Counter(unit)
        mismatched_pairs = m * (m - 1) - sum(c * (c - 1) for c in counts.values())
        observed += mismatched_pairs / (m - 1)
    d_o = observed / total_pairable

    # Expected disagreement: mismatches drawing from pooled labels.
    pooled = Counter()
    for unit in units:
        pooled.update(unit)
    n = total_pairable
    if n < 2:
        raise ValueError("need at least two pairable ratings overall")
    mismatched = n * (n - 1) - sum(c * (c - 1) for c in pooled.values())
    d_e = mismatched / (n * (n - 1))

    if d_e == 0.0:
        return 1.0
    return 1.0 - d_o / d_e


def kappa_interpretation(kappa: float) -> str:
    """Landis & Koch (1977) verbal band for a kappa/alpha value."""
    if kappa < 0.0:
        return "poor"
    if kappa <= 0.20:
        return "slight"
    if kappa <= 0.40:
        return "fair"
    if kappa <= 0.60:
        return "moderate"
    if kappa <= 0.80:
        return "substantial"
    return "almost perfect"


@dataclass(frozen=True, slots=True)
class AgreementReport:
    """Battery of reliability statistics for one code.

    Attributes:
        code: The code whose application was compared.
        n_units: Number of documents compared.
        percent: Raw percent agreement.
        kappa: Cohen's kappa (two raters) or Fleiss' kappa (more).
        alpha: Krippendorff's alpha.
        interpretation: Landis & Koch band for ``kappa``.
    """

    code: str
    n_units: int
    percent: float
    kappa: float
    alpha: float

    @property
    def interpretation(self) -> str:
        """Verbal reliability band for the kappa value."""
        return kappa_interpretation(self.kappa)


def compare_raters(
    session: CodingSession,
    raters: Sequence[str] | None = None,
    codes: Sequence[str] | None = None,
) -> list[AgreementReport]:
    """Per-code reliability battery over a coding session.

    Each document is a unit; for each code, a rater's label for a unit is
    whether they applied the code to that document (binary
    presence/absence).  This matches the common "code application
    agreement" protocol for document-level coding.

    Args:
        session: The coded data.
        raters: Raters to compare (default: all raters in the session).
        codes: Codes to report on (default: all codes any rater used).

    Returns:
        One :class:`AgreementReport` per code, sorted by code name.
    """
    rater_list = list(raters) if raters is not None else session.raters()
    if len(rater_list) < 2:
        raise ValueError("need at least two raters to compare")
    units = list(session.iter_units(rater_list))
    if not units:
        raise ValueError("session has no documents")
    used_codes = (
        sorted(codes)
        if codes is not None
        else sorted({c for _, per in units for s in per.values() for c in s})
    )
    reports = []
    for code in used_codes:
        per_rater_labels: list[list[bool]] = [
            [code in per[r] for _, per in units] for r in rater_list
        ]
        rows = list(zip(*per_rater_labels))
        if len(rater_list) == 2:
            kappa = cohens_kappa(per_rater_labels[0], per_rater_labels[1])
            percent = percent_agreement(per_rater_labels[0], per_rater_labels[1])
        else:
            kappa = fleiss_kappa(rows)
            pairs = [
                percent_agreement(per_rater_labels[i], per_rater_labels[j])
                for i in range(len(rater_list))
                for j in range(i + 1, len(rater_list))
            ]
            percent = sum(pairs) / len(pairs)
        alpha = krippendorff_alpha(rows)
        reports.append(
            AgreementReport(
                code=code,
                n_units=len(units),
                percent=percent,
                kappa=kappa,
                alpha=alpha,
            )
        )
    return reports
