"""Hierarchical codebooks.

A codebook is the controlled vocabulary of a qualitative analysis: each
code has a name, a definition, optional examples, and an optional parent
(codes form a forest).  Codebooks evolve during analysis — codes are
added as new phenomena appear in the data and merged as understanding
consolidates — so the API supports safe, history-preserving mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Code:
    """A single code in a codebook.

    Attributes:
        name: Unique identifier within the codebook (e.g. "barriers/cost").
        definition: When this code applies, written for a second rater.
        examples: Short illustrative quotes.
        parent: Name of the parent code, or None for a top-level code.
    """

    name: str
    definition: str = ""
    examples: list[str] = field(default_factory=list)
    parent: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("code name must be non-empty")


class Codebook:
    """A mutable collection of :class:`Code` objects forming a forest.

    Example:
        >>> book = Codebook("community-network study")
        >>> _ = book.add("barriers", "Obstacles to network adoption")
        >>> _ = book.add("barriers/cost", "Monetary obstacles", parent="barriers")
        >>> sorted(c.name for c in book.children("barriers"))
        ['barriers/cost']
    """

    def __init__(self, name: str, codes: list[Code] | None = None) -> None:
        self.name = name
        self._codes: dict[str, Code] = {}
        self._merge_log: list[tuple[str, str]] = []
        for code in codes or []:
            self.add_code(code)

    def __len__(self) -> int:
        return len(self._codes)

    def __contains__(self, name: str) -> bool:
        return name in self._codes

    def __iter__(self) -> Iterator[Code]:
        return iter(sorted(self._codes.values(), key=lambda c: c.name))

    def add(
        self,
        name: str,
        definition: str = "",
        examples: list[str] | None = None,
        parent: str | None = None,
    ) -> Code:
        """Create a new code and add it; returns the created :class:`Code`."""
        code = Code(name, definition, list(examples or []), parent)
        return self.add_code(code)

    def add_code(self, code: Code) -> Code:
        """Add an existing :class:`Code`; rejects duplicates and bad parents."""
        if code.name in self._codes:
            raise ValueError(f"duplicate code name: {code.name!r}")
        if code.parent is not None and code.parent not in self._codes:
            raise ValueError(f"unknown parent code: {code.parent!r}")
        self._codes[code.name] = code
        return code

    def get(self, name: str) -> Code:
        """Look up a code by name; raises KeyError when absent."""
        return self._codes[name]

    def names(self) -> list[str]:
        """All code names, sorted."""
        return sorted(self._codes)

    def roots(self) -> list[Code]:
        """Top-level codes (no parent), sorted by name."""
        return sorted(
            (c for c in self._codes.values() if c.parent is None),
            key=lambda c: c.name,
        )

    def children(self, name: str) -> list[Code]:
        """Direct children of code ``name``, sorted by name."""
        if name not in self._codes:
            raise KeyError(name)
        return sorted(
            (c for c in self._codes.values() if c.parent == name),
            key=lambda c: c.name,
        )

    def descendants(self, name: str) -> list[Code]:
        """All transitive children of code ``name``, depth-first order."""
        result: list[Code] = []
        for child in self.children(name):
            result.append(child)
            result.extend(self.descendants(child.name))
        return result

    def ancestry(self, name: str) -> list[str]:
        """Code names from root to ``name`` inclusive."""
        chain: list[str] = []
        current: str | None = name
        seen: set[str] = set()
        while current is not None:
            if current in seen:
                raise ValueError(f"parent cycle detected at {current!r}")
            seen.add(current)
            chain.append(current)
            current = self._codes[current].parent
        chain.reverse()
        return chain

    def merge(self, source: str, target: str) -> None:
        """Merge code ``source`` into ``target``.

        ``source`` is removed; its children are re-parented to ``target``
        and its examples appended to ``target``.  The merge is recorded
        in :meth:`merge_history` so coded segments can be remapped.
        """
        if source == target:
            raise ValueError("cannot merge a code into itself")
        source_code = self._codes[source]
        target_code = self._codes[target]
        for child in self.children(source):
            child.parent = target
        target_code.examples.extend(source_code.examples)
        del self._codes[source]
        self._merge_log.append((source, target))

    def merge_history(self) -> list[tuple[str, str]]:
        """``(source, target)`` pairs, oldest first."""
        return list(self._merge_log)

    def resolve(self, name: str) -> str:
        """Follow merge history to the current name for ``name``.

        Segments coded before a merge can be remapped by resolving their
        code names through this method.
        """
        current = name
        for source, target in self._merge_log:
            if current == source:
                current = target
        return current

    def to_dict(self) -> dict:
        """Serialize to a plain dict (for :mod:`repro.io.jsonl`)."""
        return {
            "name": self.name,
            "codes": [
                {
                    "name": c.name,
                    "definition": c.definition,
                    "examples": list(c.examples),
                    "parent": c.parent,
                }
                for c in self
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Codebook":
        """Inverse of :meth:`to_dict`."""
        book = cls(payload["name"])
        pending = list(payload["codes"])
        # Parents may appear after children in arbitrary serializations;
        # insert in passes until fixed point.
        while pending:
            progressed = False
            remaining = []
            for item in pending:
                parent = item.get("parent")
                if parent is None or parent in book:
                    book.add(
                        item["name"],
                        item.get("definition", ""),
                        item.get("examples"),
                        parent,
                    )
                    progressed = True
                else:
                    remaining.append(item)
            if not progressed:
                names = [item["name"] for item in remaining]
                raise ValueError(f"unresolvable parents for codes: {names}")
            pending = remaining
        return book
