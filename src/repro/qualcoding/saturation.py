"""Code-saturation curves.

"Good anthropology will always take time" (paper, Section 3) — but how
much?  Saturation analysis answers empirically: plot the number of
distinct codes discovered against the number of documents analyzed and
find where new data stops producing new codes.  This module computes the
curve, a conventional stopping rule, and a bootstrap over document
orderings (the curve depends on the order interviews happened to be
analyzed in, so a single ordering is an anecdote).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.qualcoding.segments import CodingSession


@dataclass(frozen=True, slots=True)
class SaturationCurve:
    """Cumulative code discovery over an ordered document sequence.

    Attributes:
        doc_ids: Documents in analysis order.
        cumulative_codes: ``cumulative_codes[i]`` is the number of
            distinct codes seen in the first ``i + 1`` documents.
        new_codes_per_doc: Number of never-before-seen codes contributed
            by each document.
    """

    doc_ids: tuple[str, ...]
    cumulative_codes: tuple[int, ...]
    new_codes_per_doc: tuple[int, ...]

    @property
    def total_codes(self) -> int:
        """Distinct codes discovered over the whole sequence."""
        return self.cumulative_codes[-1] if self.cumulative_codes else 0

    def coverage_at(self, n_docs: int) -> float:
        """Fraction of all discovered codes found within the first ``n_docs``."""
        if self.total_codes == 0:
            return 1.0
        if n_docs <= 0:
            return 0.0
        clamped = min(n_docs, len(self.cumulative_codes))
        return self.cumulative_codes[clamped - 1] / self.total_codes


def saturation_curve(
    session: CodingSession,
    order: Sequence[str] | None = None,
    rater: str | None = None,
) -> SaturationCurve:
    """Compute the cumulative code-discovery curve.

    Args:
        session: The coded data.
        order: Document ids in analysis order (default: sorted ids).
        rater: Restrict to one rater's codes.
    """
    matrix = session.document_code_matrix(rater=rater)
    doc_ids = list(order) if order is not None else sorted(matrix)
    unknown = [d for d in doc_ids if d not in matrix]
    if unknown:
        raise KeyError(f"unknown document ids in order: {unknown}")
    seen: set[str] = set()
    cumulative: list[int] = []
    new_counts: list[int] = []
    for doc_id in doc_ids:
        fresh = matrix[doc_id] - seen
        seen |= matrix[doc_id]
        new_counts.append(len(fresh))
        cumulative.append(len(seen))
    return SaturationCurve(tuple(doc_ids), tuple(cumulative), tuple(new_counts))


def saturation_point(
    curve: SaturationCurve, window: int = 3, threshold: int = 0
) -> int | None:
    """Index (1-based document count) at which saturation is reached.

    Saturation follows the conventional stopping rule: the first point
    after which ``window`` consecutive documents each contribute no more
    than ``threshold`` new codes.  Returns None when never reached.

    >>> curve = SaturationCurve(("a", "b", "c", "d", "e"),
    ...                         (3, 5, 5, 5, 5), (3, 2, 0, 0, 0))
    >>> saturation_point(curve, window=3)
    2
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    new = curve.new_codes_per_doc
    for i in range(len(new) - window + 1):
        if all(count <= threshold for count in new[i : i + window]):
            return i  # documents analyzed before the quiet window
    return None


def bootstrap_saturation(
    session: CodingSession,
    n_orderings: int = 100,
    seed: int = 0,
    rater: str | None = None,
    window: int = 3,
) -> dict:
    """Bootstrap the saturation point over random document orderings.

    Returns:
        Dict with keys ``mean_curve`` (average cumulative-code count per
        position), ``saturation_points`` (one per ordering; None dropped),
        ``median_saturation`` (None when no ordering saturates), and
        ``n_orderings``.
    """
    if n_orderings < 1:
        raise ValueError("n_orderings must be >= 1")
    rng = random.Random(seed)
    doc_ids = [d.doc_id for d in session.documents()]
    if not doc_ids:
        raise ValueError("session has no documents")
    totals = [0.0] * len(doc_ids)
    points: list[int] = []
    for _ in range(n_orderings):
        order = doc_ids[:]
        rng.shuffle(order)
        curve = saturation_curve(session, order=order, rater=rater)
        for i, value in enumerate(curve.cumulative_codes):
            totals[i] += value
        point = saturation_point(curve, window=window)
        if point is not None:
            points.append(point)
    points.sort()
    median = points[len(points) // 2] if points else None
    return {
        "mean_curve": [t / n_orderings for t in totals],
        "saturation_points": points,
        "median_saturation": median,
        "n_orderings": n_orderings,
    }
