"""Data-plane integrity: end-to-end verification, scrub/repair, snapshots.

The persistent data plane — artifact-cache entries, columnar corpus
shards, checkpoints, the bench ledger — backs everything the runtime
computes and everything ``repro serve`` serves.  This package is its
immune system:

- :mod:`repro.integrity.scrub` walks a cache, verifies every entry
  end-to-end (body SHA-256, not just header parse), classifies damage
  into a small taxonomy, and repairs it — regenerating byte-identical
  replacements for entries that are pure functions of their header
  config, deleting the rest down to a clean miss.
- :mod:`repro.integrity.snapshot` exports tagged, content-addressed,
  self-verifying corpus snapshots and imports them with eager total
  verification, so experiments and benches can pin a snapshot tag
  instead of regenerating ("do not benchmark against an arbitrary
  commit").

Both surface damage as the typed, one-line
:class:`repro.errors.IntegrityError`.
"""

from repro.integrity.scrub import (
    DAMAGE_KINDS,
    DEFAULT_REGENERATORS,
    EntryInfo,
    Finding,
    ScrubReport,
    classify_entry,
    iter_entries,
    repair_cache,
    scrub_cache,
    verify_entry,
)
from repro.integrity.snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_SCHEMA_VERSION,
    export_snapshot,
    import_snapshot,
    load_manifest,
    snapshot_config_hash,
)

__all__ = [
    "DAMAGE_KINDS",
    "DEFAULT_REGENERATORS",
    "EntryInfo",
    "Finding",
    "MANIFEST_NAME",
    "SNAPSHOT_SCHEMA_VERSION",
    "ScrubReport",
    "classify_entry",
    "export_snapshot",
    "import_snapshot",
    "iter_entries",
    "load_manifest",
    "repair_cache",
    "scrub_cache",
    "snapshot_config_hash",
    "verify_entry",
]
