"""Versioned, content-addressed corpus snapshots.

"Do not benchmark against an arbitrary commit": experiments and
benches should pin a *tagged, checksummed* corpus, not whatever a
generator produced this morning.  A snapshot is a directory:

.. code-block:: text

    <dir>/
      snapshot.json            # the manifest (see below)
      objects/<sha256>.jsonl   # one encoded shard per file,
                               # named by its own body digest

The manifest carries everything needed to *verify* the snapshot without
trusting it: the snapshot schema version, the tag, the generator
version, the full generator config and venue-profile panel, a
``config_hash`` over both, one ``{index, n_papers, sha256,
fingerprint}`` entry per shard, the merged corpus fingerprint, and
finally ``manifest_sha256`` — a digest over the canonical JSON of every
*other* manifest field, so editing **any** field (or reordering the
shard list) is detectable, not just damage to the shard bytes.

:func:`import_snapshot` verifies all of it eagerly — manifest digest,
config hash, per-object byte digests, decoded shard fingerprints, the
merged fingerprint, and the shard layout against a plan recomputed from
the config — and raises a one-line typed
:class:`repro.errors.IntegrityError` naming the first thing that does
not hold.  Nothing about a snapshot is trusted because it is present;
everything is recomputed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.errors import IntegrityError
from repro.io.artifacts import body_digest
from repro.io.jsonl import read_jsonl, write_jsonl

__all__ = [
    "MANIFEST_NAME",
    "SNAPSHOT_SCHEMA_VERSION",
    "export_snapshot",
    "import_snapshot",
    "load_manifest",
    "snapshot_config_hash",
]

#: Bump when the manifest schema or object layout changes shape.
SNAPSHOT_SCHEMA_VERSION = 1

#: The manifest filename inside a snapshot directory.
MANIFEST_NAME = "snapshot.json"

#: Subdirectory holding the content-addressed shard objects.
_OBJECTS_DIR = "objects"


def _canonical_sha256(payload: object) -> str:
    """SHA-256 over the canonical JSON of ``payload``."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, ensure_ascii=False).encode("utf-8")
    ).hexdigest()


def snapshot_config_hash(config: dict, profiles: list[dict]) -> str:
    """The identity hash of (generator config, venue panel)."""
    return _canonical_sha256({"config": config, "profiles": profiles})


def _manifest_sha256(manifest: dict) -> str:
    """The manifest's self-digest (over every field except itself)."""
    body = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    return _canonical_sha256(body)


def _fail(message: str, **context) -> None:
    raise IntegrityError(message, stage="import", **context)


def export_snapshot(
    directory: str | Path,
    config=None,
    profiles=None,
    *,
    tag: str,
    workers: int = 1,
    cache_dir: str | None = None,
    force: bool = False,
) -> dict:
    """Write a tagged snapshot of the corpus for ``(config, profiles)``.

    Generates (or replays, given a warm ``cache_dir``) the columnar
    corpus, then lands every shard as ``objects/<sha256>.jsonl`` — the
    filename *is* the digest of the file's bytes — plus the manifest.
    Returns the manifest dict.

    Args:
        directory: Snapshot directory to create.
        config: :class:`~repro.bibliometrics.shardgen.ShardedCorpusConfig`
            (default config when None).
        profiles: Venue panel (default panel when None).
        tag: Human-facing snapshot tag recorded in the manifest.
        workers: Shard-generation worker count (never changes content).
        cache_dir: Optional artifact cache to read shards through.
        force: Overwrite an existing manifest (refused otherwise).
    """
    import time

    from repro import __version__
    from repro.bibliometrics.shardgen import (
        ShardedCorpusConfig,
        default_venue_profiles,
        generate_columnar_corpus,
    )
    from repro.bibliometrics.columnar import encode_shard, merge_fingerprints

    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists() and not force:
        raise IntegrityError(
            f"snapshot manifest already exists: {manifest_path} "
            "(pass force=True / --force to overwrite)",
            path=str(manifest_path),
            stage="export",
        )
    config = config or ShardedCorpusConfig()
    profiles = profiles if profiles is not None else default_venue_profiles()
    corpus = generate_columnar_corpus(
        config,
        profiles,
        workers=workers,
        cache_dir=cache_dir,
        stream=cache_dir is not None,
    )

    objects = directory / _OBJECTS_DIR
    shard_entries: list[dict] = []
    fingerprints: list[str] = []
    for shard in corpus.iter_shards():
        records = encode_shard(shard)
        digest = body_digest(records)
        write_jsonl(objects / f"{digest}.jsonl", records)
        fingerprints.append(shard.fingerprint())
        shard_entries.append({
            "index": shard.index,
            "n_papers": shard.n_papers,
            "sha256": digest,
            "fingerprint": fingerprints[-1],
        })

    config_dict = config.to_dict()
    profile_dicts = [asdict(profile) for profile in profiles]
    manifest = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "tag": tag,
        "generator_version": __version__,
        "created": time.time(),
        "config": config_dict,
        "profiles": profile_dicts,
        "config_hash": snapshot_config_hash(config_dict, profile_dicts),
        "n_papers": sum(entry["n_papers"] for entry in shard_entries),
        "shards": shard_entries,
        "fingerprint": merge_fingerprints(fingerprints),
    }
    manifest["manifest_sha256"] = _manifest_sha256(manifest)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path.write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return manifest


def load_manifest(directory: str | Path) -> dict:
    """Read and self-verify a snapshot manifest (no shard reads yet).

    Checks the schema version, the ``manifest_sha256`` self-digest (any
    edited field mismatches), and the ``config_hash`` over the embedded
    config and profiles.  Raises :class:`repro.errors.IntegrityError`
    with a one-line message on the first violation.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        _fail(f"no snapshot manifest at {manifest_path}", path=str(manifest_path))
    except (UnicodeDecodeError, json.JSONDecodeError):
        _fail(
            f"snapshot manifest is not valid JSON: {manifest_path}",
            path=str(manifest_path),
            damage="garbled",
        )
    if not isinstance(manifest, dict):
        _fail(f"snapshot manifest is not an object: {manifest_path}",
              path=str(manifest_path), damage="bad_header")
    if manifest.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        _fail(
            f"unsupported snapshot schema {manifest.get('schema_version')!r} "
            f"(this build reads {SNAPSHOT_SCHEMA_VERSION})",
            path=str(manifest_path),
            damage="bad_header",
        )
    declared = manifest.get("manifest_sha256")
    actual = _manifest_sha256(manifest)
    if declared != actual:
        _fail(
            "snapshot manifest failed its self-digest "
            "(a field was edited or damaged after export)",
            path=str(manifest_path),
            damage="bit_flipped",
            expected=declared,
            actual=actual,
        )
    config_hash = snapshot_config_hash(
        manifest.get("config", {}), manifest.get("profiles", [])
    )
    if manifest.get("config_hash") != config_hash:
        _fail(
            "snapshot config_hash does not match the embedded config",
            path=str(manifest_path),
            damage="bit_flipped",
            expected=manifest.get("config_hash"),
            actual=config_hash,
        )
    return manifest


def import_snapshot(
    directory: str | Path,
    *,
    cache_dir: str | None = None,
    max_resident: int | None = 1,
):
    """Open a snapshot as a verified, streaming ``ColumnarCorpus``.

    Verification is eager and total: the manifest self-digest and
    config hash (:func:`load_manifest`), the shard layout against a
    plan recomputed from the config, every object file's bytes against
    its content-address, every decoded shard's fingerprint against the
    manifest, and the merged fingerprint.  The first violation raises
    a one-line :class:`repro.errors.IntegrityError`; a corpus is only
    returned when every byte checked out.

    Args:
        directory: The snapshot directory.
        cache_dir: When given, each verified shard is also landed in
            that artifact cache (normal atomic puts), so subsequent
            ``generate_columnar_corpus(..., cache_dir=...)`` calls
            replay the snapshot warm instead of regenerating.
        max_resident: LRU width for the returned corpus (default 1 —
            streaming; None keeps every decoded shard resident).

    Returns:
        A :class:`~repro.bibliometrics.columnar.ColumnarCorpus` backed
        by the snapshot's object files.
    """
    from repro.bibliometrics.columnar import (
        SHARD_ARTIFACT_KIND,
        SHARD_SCHEMA_VERSION,
        ColumnarCorpus,
        decode_shard,
        merge_fingerprints,
    )
    from repro.bibliometrics.shardgen import (
        CorpusPlan,
        ShardedCorpusConfig,
        build_vocab,
        shard_cache_config,
    )
    from repro.bibliometrics.synthgen import VenueProfile

    directory = Path(directory)
    manifest = load_manifest(directory)
    try:
        config = ShardedCorpusConfig(**manifest["config"])
        profiles = [VenueProfile(**profile) for profile in manifest["profiles"]]
    except (TypeError, ValueError) as exc:
        _fail(f"snapshot config does not construct: {exc}",
              path=str(directory / MANIFEST_NAME), damage="bad_header")

    shard_entries = manifest.get("shards", [])
    plan = CorpusPlan(config, profiles)
    planned_sizes = plan.shard_sizes()
    declared_sizes = [entry.get("n_papers") for entry in shard_entries]
    if declared_sizes != planned_sizes:
        _fail(
            f"snapshot shard layout {declared_sizes} does not match the "
            f"plan recomputed from its config {planned_sizes}",
            path=str(directory / MANIFEST_NAME),
            damage="bad_header",
        )

    objects = directory / _OBJECTS_DIR
    cache = None
    if cache_dir is not None:
        from repro.io.artifacts import ArtifactCache

        cache = ArtifactCache(cache_dir, version=SHARD_SCHEMA_VERSION, sweep=False)

    fingerprints: list[str] = []
    for entry in shard_entries:
        object_path = objects / f"{entry['sha256']}.jsonl"
        try:
            data = object_path.read_bytes()
        except FileNotFoundError:
            _fail(
                f"snapshot object missing: {object_path.name}",
                path=str(object_path),
                kind=SHARD_ARTIFACT_KIND,
                damage="truncated",
            )
        actual = hashlib.sha256(data).hexdigest()
        if actual != entry["sha256"]:
            _fail(
                f"snapshot object {object_path.name} failed its digest",
                path=str(object_path),
                kind=SHARD_ARTIFACT_KIND,
                damage="bit_flipped",
                expected=entry["sha256"],
                actual=actual,
            )
        records = list(read_jsonl(object_path))
        shard = decode_shard(records)
        if shard.index != entry["index"] or shard.n_papers != entry["n_papers"]:
            _fail(
                f"snapshot object {object_path.name} decodes to shard "
                f"{shard.index} ({shard.n_papers} papers); manifest says "
                f"shard {entry['index']} ({entry['n_papers']} papers)",
                path=str(object_path),
                kind=SHARD_ARTIFACT_KIND,
                damage="bad_header",
            )
        fingerprint = shard.fingerprint()
        if fingerprint != entry["fingerprint"]:
            _fail(
                f"snapshot shard {entry['index']} fingerprint mismatch",
                path=str(object_path),
                kind=SHARD_ARTIFACT_KIND,
                damage="bit_flipped",
                expected=entry["fingerprint"],
                actual=fingerprint,
            )
        fingerprints.append(fingerprint)
        if cache is not None:
            cache.put(
                SHARD_ARTIFACT_KIND,
                shard_cache_config(config, profiles, entry["index"]),
                records,
            )
    merged = merge_fingerprints(fingerprints)
    if merged != manifest.get("fingerprint"):
        _fail(
            "snapshot merged fingerprint mismatch",
            path=str(directory / MANIFEST_NAME),
            damage="bit_flipped",
            expected=manifest.get("fingerprint"),
            actual=merged,
        )

    vocab = build_vocab(config, profiles, plan)
    by_index = {entry["index"]: entry for entry in shard_entries}

    def loader(index: int):
        path = objects / f"{by_index[index]['sha256']}.jsonl"
        return decode_shard(list(read_jsonl(path)))

    return ColumnarCorpus(
        vocab,
        planned_sizes,
        loader,
        shard_fingerprints=fingerprints,
        max_resident=max_resident,
    )
