"""Cache scrubbing: walk, classify damage, repair in place.

The artifact cache's read path treats every corruption mode as a miss,
which keeps *running* systems healthy — but silently: a bit-flipped
shard costs a regeneration nobody hears about, and damage in entries
nothing currently reads is never even noticed.  The scrubber is the
proactive half of the self-healing story:

- :func:`scrub_cache` walks a cache directory, verifies every entry
  end-to-end (header fields, per-line parse, declared count, body
  SHA-256, filename-vs-recomputed content address) and classifies each
  damaged file into a small taxonomy (:data:`DAMAGE_KINDS`), producing
  a machine-readable :class:`ScrubReport`.
- :func:`repair_cache` fixes what the report found.  Entries whose
  kind is a pure function of its header config — corpus shards
  (PR 8), the shared experiment corpus — are **regenerated
  byte-identically** from that config via :data:`DEFAULT_REGENERATORS`;
  everything else (sweep results, unreadable headers, orphaned temp
  files) is deleted, which turns the damage into a clean miss the next
  reader recomputes through.

Both halves emit ``integrity.scrub`` / ``integrity.repair`` spans, so
``repro obs report`` can show scrub activity alongside the rest of a
campaign.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import IntegrityError
from repro.io.artifacts import ArtifactCache, artifact_key

__all__ = [
    "DAMAGE_KINDS",
    "DEFAULT_REGENERATORS",
    "EntryInfo",
    "Finding",
    "ScrubReport",
    "classify_entry",
    "iter_entries",
    "repair_cache",
    "scrub_cache",
    "verify_entry",
]

#: The damage taxonomy, in rough order of how the bytes died:
#:
#: - ``orphaned_tmp`` — a writer's private temp file that outlived its
#:   (killed) writer; never renamed into place, pure litter.
#: - ``truncated`` — the file ends early: empty, a torn final line, or
#:   fewer records than the header declared (a truncation fault, a
#:   short copy).
#: - ``bit_flipped`` — every line parses and the shape is right, but
#:   the body bytes do not hash to the header's ``sha256``: silent
#:   media corruption, the failure mode only end-to-end digests catch.
#: - ``bad_header`` — the header line is unparsable, missing fields,
#:   or disagrees with where the file lives (kind directory, content
#:   address); the entry cannot be trusted to describe itself.
#: - ``garbled`` — an interior line is not JSON, or there are *more*
#:   records than declared: interleaved or mangled writes.
DAMAGE_KINDS = (
    "orphaned_tmp",
    "truncated",
    "bit_flipped",
    "bad_header",
    "garbled",
)

#: Header fields every verifiable entry must carry (the v2 format).
_REQUIRED_HEADER_FIELDS = ("artifact", "version", "config", "count", "sha256")


def _regenerate_shard_records(config: dict) -> list[dict]:
    """Rebuild a ``corpus-shard`` entry from its header config.

    Two writers share the kind, told apart by their config shape: the
    shard-parallel generator keys entries by ``shard_cache_config``
    output (generator config, venue profiles, shard index), while the
    experiment suite's columnar backend keys re-encoded classic shards
    with a ``layout: columnar`` marker.  Either way the shard is a pure
    function of its config, so the replacement is byte-identical.
    """
    if config.get("layout") == "columnar":
        from repro.experiments._corpus import regenerate_shard_records

        return regenerate_shard_records(config)

    from repro.bibliometrics.columnar import encode_shard
    from repro.bibliometrics.shardgen import ShardedCorpusConfig, generate_shard
    from repro.bibliometrics.synthgen import VenueProfile

    generator = ShardedCorpusConfig(**config["config"])
    profiles = [VenueProfile(**profile) for profile in config["profiles"]]
    return encode_shard(generate_shard(generator, profiles, config["shard"]))


def _regenerate_corpus_records(config: dict) -> list[dict]:
    from repro.experiments._corpus import regenerate_corpus_records

    return regenerate_corpus_records(config)


#: Artifact kinds whose records are a pure function of their header
#: config, keyed to the regenerator that proves it.  Kinds not listed
#: here (sweep results above all — their spec lives with the sweep, not
#: in the cache) are repaired by deletion: the damage becomes a clean
#: miss and the next reader recomputes.
DEFAULT_REGENERATORS: dict[str, Callable[[dict], list[dict]]] = {
    "corpus-shard": _regenerate_shard_records,
    "shared-corpus": _regenerate_corpus_records,
}


@dataclass
class Finding:
    """One damaged file, classified.

    Attributes:
        path: The damaged file.
        damage: One of :data:`DAMAGE_KINDS`.
        detail: One human-readable line of evidence.
        kind: Artifact kind (from the header when readable, else the
            kind directory the file lives in).
        key: The entry's content address (filename stem).
        size: File size in bytes at scrub time.
        repair: Filled by :func:`repair_cache` — ``"regenerated"``,
            ``"deleted"``, or ``"failed"``; None before repair.
    """

    path: str
    damage: str
    detail: str
    kind: str | None = None
    key: str | None = None
    size: int = 0
    repair: str | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class ScrubReport:
    """Machine-readable outcome of one scrub (and optional repair) pass.

    Attributes:
        root: The cache directory walked.
        entries: Entry files examined (``*.jsonl``).
        intact: Entries that passed every check.
        bytes_scanned: Total bytes read while verifying.
        findings: One :class:`Finding` per damaged file.
    """

    root: str
    entries: int = 0
    intact: int = 0
    bytes_scanned: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def damaged(self) -> int:
        return len(self.findings)

    def damage_counts(self) -> dict[str, int]:
        """``{damage_kind: count}`` over the findings."""
        return dict(Counter(finding.damage for finding in self.findings))

    def repair_counts(self) -> dict[str, int]:
        """``{repair_action: count}`` over repaired findings."""
        return dict(
            Counter(
                finding.repair
                for finding in self.findings
                if finding.repair is not None
            )
        )

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "intact": self.intact,
            "damaged": self.damaged,
            "bytes_scanned": self.bytes_scanned,
            "damage_counts": self.damage_counts(),
            "repair_counts": self.repair_counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }


@dataclass
class EntryInfo:
    """One cache entry as seen by the walker (no verification).

    The shared substrate for ``repro cache ls``/``stats`` — kind, key,
    size, and age are all the listing needs, and none of it requires
    reading the file body.
    """

    path: str
    kind: str
    key: str
    size: int
    age_seconds: float

    def to_dict(self) -> dict:
        return asdict(self)


def iter_entries(root: str | Path) -> Iterator[EntryInfo]:
    """Yield every cache entry under ``root``, cheapest-first metadata.

    Entries live at ``<root>/<kind>/<key>.jsonl``; lock files and temp
    files are not entries and are skipped (temp files are surfaced by
    :func:`scrub_cache` as ``orphaned_tmp`` findings instead).
    """
    root = Path(root)
    if not root.exists():
        return
    now = time.time()
    for path in sorted(root.rglob("*.jsonl")):
        try:
            stat = path.stat()
        except FileNotFoundError:  # pragma: no cover - racing cleaner
            continue
        yield EntryInfo(
            path=str(path),
            kind=path.parent.name if path.parent != root else "",
            key=path.stem,
            size=stat.st_size,
            age_seconds=max(0.0, now - stat.st_mtime),
        )


def classify_entry(
    path: str | Path,
    *,
    expect_addressed: bool = True,
) -> tuple[str | None, str, dict | None]:
    """Verify one entry file end-to-end; classify any damage.

    Returns ``(damage, detail, header)`` where ``damage`` is None for
    an intact entry and one of :data:`DAMAGE_KINDS` otherwise, and
    ``header`` is the parsed header dict whenever the header line was
    readable (repair needs it even for damaged bodies).

    Args:
        path: The ``<kind>/<key>.jsonl`` entry file.
        expect_addressed: Also check that the filename stem equals the
            content address recomputed from the header — True for cache
            entries, False for files that are not content-addressed.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return "truncated", "file vanished mid-scrub", None
    if not data:
        return "truncated", "empty file", None

    newline = data.find(b"\n")
    torn_header = newline < 0
    header_bytes = data if torn_header else data[:newline]
    body = b"" if torn_header else data[newline + 1 :]
    try:
        header = json.loads(header_bytes.decode("utf-8-sig"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        if torn_header:
            return "truncated", "torn header line (no newline)", None
        return "bad_header", "header line is not JSON", None
    if not isinstance(header, dict):
        return "bad_header", "header is not an object", None
    missing = [k for k in _REQUIRED_HEADER_FIELDS if k not in header]
    if missing:
        return (
            "bad_header",
            f"header missing fields: {missing} (pre-digest entry?)",
            header,
        )
    kind_dir = path.parent.name
    if header["artifact"] != kind_dir:
        return (
            "bad_header",
            f"header kind {header['artifact']!r} != directory {kind_dir!r}",
            header,
        )
    if expect_addressed:
        expected_key = artifact_key(
            header["artifact"], header["config"], header["version"]
        )
        if path.stem != expected_key:
            return (
                "bad_header",
                "filename does not match the content address recomputed "
                "from the header (moved or relabeled entry)",
                header,
            )

    # Body shape: every line must parse, the final line must be
    # newline-terminated, and the record count must match the header.
    torn_tail = bool(body) and not body.endswith(b"\n")
    records = 0
    lines = body.split(b"\n")
    for number, line in enumerate(lines, start=2):
        if not line.strip():
            continue
        try:
            json.loads(line.decode("utf-8-sig"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            if torn_tail and number - 1 == len(lines):
                return "truncated", f"torn final line {number}", header
            return "garbled", f"line {number} is not JSON", header
        records += 1
    if torn_tail:
        return "truncated", "final line has no newline", header
    declared = header["count"]
    if records < declared:
        return (
            "truncated",
            f"{records} records on disk, header declares {declared}",
            header,
        )
    if records > declared:
        return (
            "garbled",
            f"{records} records on disk, header declares {declared}",
            header,
        )

    # The end-to-end check: bytes, not parse trees.
    actual = hashlib.sha256(body).hexdigest()
    if actual != header["sha256"]:
        return (
            "bit_flipped",
            f"body sha256 {actual[:12]}… != declared {header['sha256'][:12]}…",
            header,
        )
    return None, "intact", header


def verify_entry(path: str | Path, *, expect_addressed: bool = True) -> dict:
    """Classify ``path`` and raise a typed error on any damage.

    The strict wrapper around :func:`classify_entry` for callers that
    must surface corruption (smoke checks, snapshot members) instead of
    reporting it: raises :class:`repro.errors.IntegrityError` with a
    one-line message, returns the parsed header when intact.
    """
    damage, detail, header = classify_entry(
        path, expect_addressed=expect_addressed
    )
    if damage is not None:
        raise IntegrityError(
            f"{Path(path).name}: {detail}",
            path=str(path),
            kind=header.get("artifact") if header else None,
            damage=damage,
            stage="read",
        )
    return header


def _tracer():
    from repro.obs.tracing import current_tracer

    return current_tracer()


def scrub_cache(root: str | Path) -> ScrubReport:
    """Walk a cache directory and verify every entry end-to-end.

    Emits one ``integrity.scrub`` span carrying the headline counts.
    Never modifies anything — pair with :func:`repair_cache` to heal.
    """
    root = Path(root)
    report = ScrubReport(root=str(root))
    with _tracer().span("integrity.scrub", root=str(root)) as span:
        if root.exists():
            for path in sorted(root.rglob("*.tmp")):
                try:
                    size = path.stat().st_size
                except FileNotFoundError:  # pragma: no cover - racer
                    continue
                report.findings.append(Finding(
                    path=str(path),
                    damage="orphaned_tmp",
                    detail="writer temp file that outlived its writer",
                    kind=path.parent.name if path.parent != root else None,
                    size=size,
                ))
            for path in sorted(root.rglob("*.jsonl")):
                try:
                    size = path.stat().st_size
                except FileNotFoundError:  # pragma: no cover - racer
                    continue
                report.entries += 1
                report.bytes_scanned += size
                damage, detail, header = classify_entry(path)
                if damage is None:
                    report.intact += 1
                    continue
                report.findings.append(Finding(
                    path=str(path),
                    damage=damage,
                    detail=detail,
                    kind=(header or {}).get("artifact", path.parent.name),
                    key=path.stem,
                    size=size,
                ))
        span.set_attribute("entries", report.entries)
        span.set_attribute("damaged", report.damaged)
        span.set_attribute("bytes_scanned", report.bytes_scanned)
    return report


def _read_header(path: Path) -> dict | None:
    """The entry's header dict when its first line still parses."""
    try:
        with path.open("rb") as handle:
            first = handle.readline()
        header = json.loads(first.decode("utf-8-sig"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    return header if isinstance(header, dict) else None


def repair_cache(
    root: str | Path,
    report: ScrubReport | None = None,
    *,
    regenerators: dict[str, Callable[[dict], list[dict]]] | None = None,
) -> ScrubReport:
    """Heal the damage a scrub found; returns the annotated report.

    Strategy per finding:

    - ``orphaned_tmp`` → delete (it was never an entry).
    - damaged entry with a readable header whose kind has a registered
      regenerator → regenerate the records from the header config and
      land them through the normal atomic :meth:`ArtifactCache.put`,
      then re-verify; only the damaged entries are regenerated, nothing
      intact is touched.
    - anything else (unreadable header, unregenerable kind) → delete,
      so the next reader takes a clean miss and recomputes on demand.

    Runs a fresh :func:`scrub_cache` when ``report`` is None.  Each
    finding's ``repair`` field records what happened.  Emits one
    ``integrity.repair`` span with regenerated/deleted counts.
    """
    root = Path(root)
    if report is None:
        report = scrub_cache(root)
    regenerators = (
        DEFAULT_REGENERATORS if regenerators is None else regenerators
    )
    regenerated = deleted = failed = 0
    with _tracer().span("integrity.repair", root=str(root)) as span:
        for finding in report.findings:
            path = Path(finding.path)
            if finding.damage == "orphaned_tmp":
                path.unlink(missing_ok=True)
                finding.repair = "deleted"
                deleted += 1
                continue
            header = _read_header(path)
            kind = (header or {}).get("artifact")
            regenerate = regenerators.get(kind) if isinstance(kind, str) else None
            if (
                header is not None
                and regenerate is not None
                and all(k in header for k in ("config", "version"))
            ):
                try:
                    records = regenerate(header["config"])
                    cache = ArtifactCache(
                        root, version=header["version"], sweep=False
                    )
                    cache.put(kind, header["config"], records)
                    cache.read_verified(kind, header["config"])
                except Exception as exc:  # noqa: BLE001 - degrade to delete
                    # A regenerator that cannot reproduce the entry
                    # (config drift, generator change) must not leave
                    # the damage in place: fall through to deletion so
                    # readers at least get a clean miss.
                    path.unlink(missing_ok=True)
                    finding.repair = "deleted"
                    finding.detail += f"; regeneration failed: {exc}"
                    failed += 1
                    deleted += 1
                    continue
                finding.repair = "regenerated"
                regenerated += 1
            else:
                path.unlink(missing_ok=True)
                finding.repair = "deleted"
                deleted += 1
        span.set_attribute("regenerated", regenerated)
        span.set_attribute("deleted", deleted)
        span.set_attribute("failed", failed)
    return report
