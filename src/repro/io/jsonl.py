"""Line-delimited JSON persistence.

JSONL is the interchange format for every dataset this library produces:
one JSON object per line, UTF-8, no trailing commas to corrupt, and
streamable.  Readers tolerate (and report) blank lines and a leading
UTF-8 BOM, and can distinguish a *torn final line* (a writer killed
mid-record) from interior corruption.  Writers are crash-safe:
``write_jsonl`` lands atomically (write ``path.tmp``, fsync, rename),
so a killed process leaves either the old file or the complete new one
on disk — never a half-written dataset.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import JsonlDecodeError, TruncatedFileError

#: Valid ``on_error`` modes for :func:`read_jsonl`.
ON_ERROR_MODES = ("raise", "skip", "collect")


def _metrics():
    """The active metrics registry (a no-op sink unless one is installed).

    Imported lazily at call time: :mod:`repro.obs` exports trace files
    through this module, so a top-level import would be circular.  The
    per-call cost is one ``sys.modules`` lookup.
    """
    from repro.obs.metrics import current_metrics

    return current_metrics()


def _check_fault(point: str) -> None:
    """Fire the process-wide fault injector at ``point``, if one is armed.

    Lazy import for the same circularity reason as :func:`_metrics`.
    This is how chaos tests aim ``enospc`` (and friends) at the write
    paths without the writers carrying an injector argument; with no
    injector installed the cost is one ``sys.modules`` lookup.
    """
    from repro.runtime.faultinject import current_fault_injector

    injector = current_fault_injector()
    if injector is not None:
        injector.check(point)


def _dump_lines(handle, records: Iterable[dict]) -> int:
    count = 0
    for record in records:
        handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True))
        handle.write("\n")
        count += 1
    return count


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write ``records`` to ``path``, one JSON object per line.

    Returns the number of records written.  Parent directories are
    created as needed; an existing file is overwritten.  The write is
    atomic: records land in a private ``<path>.<random>.tmp`` which is
    fsynced and renamed over ``path``, so readers (and crashes —
    including a mid-write ``kill -9``) never observe a torn file.  The
    temp name is unique per writer, so concurrent writers racing on the
    same destination each land a complete file (last rename wins)
    instead of interleaving into a shared scratch file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            # The injection point sits after the temp file exists, so an
            # injected ENOSPC exercises the same orphan-cleanup path a
            # real full disk would.
            _check_fault("io:write_jsonl")
            count = _dump_lines(handle, records)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _metrics().count("io.jsonl.rows_written", count)
    return count


def append_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Append ``records`` to ``path``; creates the file when absent.

    Appends keep append semantics (no rewrite of earlier data) but the
    batch is flushed and fsynced before returning, so a crash *after*
    the call never loses it; a crash *during* the call can tear at
    most the final line, which :func:`read_jsonl` detects and can
    salvage around.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        _check_fault("io:append_jsonl")
        count = _dump_lines(handle, records)
        handle.flush()
        os.fsync(handle.fileno())
    _metrics().count("io.jsonl.rows_written", count)
    return count


def salvage_jsonl_tail(path: str | Path) -> str | None:
    """Repair a JSONL file whose final line has no terminating newline.

    A missing final newline means the last writer was killed
    mid-append.  Left alone it silently corrupts the *next* append —
    the new record would concatenate onto the torn tail and turn one
    bad line into two lost records — so resume paths call this before
    appending again.  Two cases:

    - the tail parses as JSON (the writer died between the record and
      its newline): the newline is added and the record survives —
      returns ``"closed"``;
    - the tail is torn mid-record: the file is truncated back to the
      last complete line — returns ``"truncated"``.

    Returns None when the file is absent, empty, or already ends in a
    newline.  Salvage events are counted as ``io.jsonl.tails_closed`` /
    ``io.jsonl.tails_truncated``.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    if not data or data.endswith(b"\n"):
        return None
    cut = data.rfind(b"\n") + 1  # 0 when the whole file is one torn line
    tail = data[cut:]
    try:
        json.loads(tail.decode("utf-8-sig"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        with path.open("r+b") as handle:
            handle.truncate(cut)
            handle.flush()
            os.fsync(handle.fileno())
        _metrics().count("io.jsonl.tails_truncated")
        return "truncated"
    with path.open("ab") as handle:
        handle.write(b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    _metrics().count("io.jsonl.tails_closed")
    return "closed"


def read_jsonl(
    path: str | Path,
    on_error: str = "raise",
    errors: list | None = None,
) -> Iterator[dict]:
    """Yield the records of a JSONL file, skipping blank lines.

    A UTF-8 BOM on the first line is tolerated.  A malformed line
    raises :class:`repro.errors.JsonlDecodeError` (a
    ``json.JSONDecodeError`` subclass, annotated with path and line
    number); a final line that is both unterminated and invalid raises
    :class:`repro.errors.TruncatedFileError` instead, since that
    signature means the writer was killed mid-record and everything
    before it is salvageable.

    Args:
        path: The file to read.
        on_error: ``"raise"`` (default) stops at the first bad line;
            ``"skip"`` silently drops bad lines; ``"collect"`` drops
            them but appends the exception to ``errors`` for a salvage
            report.
        errors: Target list for ``on_error="collect"``.
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r}; known: {ON_ERROR_MODES}"
        )
    if on_error == "collect" and errors is None:
        raise ValueError('on_error="collect" needs an errors list to fill')
    path = Path(path)
    rows_read = 0
    salvaged = 0
    # utf-8-sig strips a leading BOM when present, reads plain UTF-8
    # unchanged otherwise.
    try:
        with path.open("r", encoding="utf-8-sig") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError as exc:
                    truncated = not line.endswith("\n")
                    error_cls = (
                        TruncatedFileError if truncated else JsonlDecodeError
                    )
                    prefix = "truncated final line (writer killed mid-record?)"
                    detail = f"{prefix}: {exc.msg}" if truncated else exc.msg
                    wrapped = error_cls(
                        f"{path}:{line_number}: {detail}",
                        exc.doc,
                        exc.pos,
                        path=str(path),
                        line_number=line_number,
                    )
                    if on_error == "raise":
                        raise wrapped from exc
                    salvaged += 1
                    if on_error == "collect":
                        errors.append(wrapped)
                    continue
                rows_read += 1
                yield record
    finally:
        # Counted in a finally so a partially consumed generator still
        # reports the rows it produced and the lines it skipped around.
        metrics = _metrics()
        metrics.count("io.jsonl.rows_read", rows_read)
        metrics.count("io.jsonl.salvaged_lines", salvaged)
