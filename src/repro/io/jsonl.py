"""Line-delimited JSON persistence.

JSONL is the interchange format for every dataset this library produces:
one JSON object per line, UTF-8, no trailing commas to corrupt, and
streamable.  Readers tolerate (and report) blank lines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write ``records`` to ``path``, one JSON object per line.

    Returns the number of records written.  Parent directories are
    created as needed; an existing file is overwritten.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def append_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Append ``records`` to ``path``; creates the file when absent."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield the records of a JSONL file, skipping blank lines.

    Raises ``json.JSONDecodeError`` (annotated with the line number) on
    malformed lines rather than silently dropping data.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                yield json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise json.JSONDecodeError(
                    f"{path}:{line_number}: {exc.msg}", exc.doc, exc.pos
                ) from exc
