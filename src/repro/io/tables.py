"""Plain-text table rendering.

Every benchmark prints its result rows as an aligned plain-text table so
EXPERIMENTS.md entries can be pasted straight from a run's output.  The
registry listing (``repro experiments --list``), the metrics renderer,
and ``repro obs report`` all format through this one module — tables
via :func:`render_table`, key/value blocks via :func:`render_kv`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """An accumulating result table.

    Example:
        >>> t = Table(["venue", "share"], title="Method adoption")
        >>> t.add_row(["SIGCOMM-like", 0.041])
        >>> print(t.render())  # doctest: +SKIP
    """

    columns: list[str]
    title: str = ""
    precision: int = 3
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, row: Sequence[object]) -> None:
        """Append a row; must match the column count."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        return render_table(
            self.columns, self.rows, title=self.title, precision=self.precision
        )

    def to_records(self) -> list[dict]:
        """Rows as dicts keyed by column name (for JSONL persistence)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_payload(self) -> dict:
        """The full table as one JSON-safe dict (inverse of :meth:`from_payload`)."""
        return {
            "columns": list(self.columns),
            "title": self.title,
            "precision": self.precision,
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> Table:
        """Rebuild a table from :meth:`to_payload` output."""
        return cls(
            columns=list(payload["columns"]),
            title=payload.get("title", ""),
            precision=payload.get("precision", 3),
            rows=[list(row) for row in payload.get("rows", [])],
        )


def render_kv(
    pairs: Sequence[tuple[str, object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``(key, value)`` pairs as an aligned two-column block.

    The key/value sections of reports (``repro obs report`` summaries,
    metrics dumps) share this one formatter so every surface aligns the
    same way.
    """
    width = max((len(key) for key, _ in pairs), default=0)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"{key.ljust(width)}  {_format_cell(value, precision)}")
    return "\n".join(lines)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``columns`` and ``rows`` as an aligned plain-text table."""
    formatted = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(c) for c in columns]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
