"""Persistence and report-rendering helpers.

- :mod:`repro.io.jsonl` -- line-delimited JSON read/write for corpora,
  coded sessions, and experiment outputs.
- :mod:`repro.io.artifacts` -- content-addressed on-disk cache for
  expensive derived datasets, shared across processes and runs.
- :mod:`repro.io.tables` -- plain-text table rendering for benchmark
  reports (the rows EXPERIMENTS.md records).
"""

from repro.io.artifacts import ARTIFACT_FORMAT_VERSION, ArtifactCache, artifact_key
from repro.io.jsonl import read_jsonl, write_jsonl, append_jsonl
from repro.io.tables import Table, render_kv, render_table

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactCache",
    "artifact_key",
    "read_jsonl",
    "write_jsonl",
    "append_jsonl",
    "Table",
    "render_kv",
    "render_table",
]
