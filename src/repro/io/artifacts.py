"""Content-addressed on-disk artifact cache.

Expensive derived datasets (the synthetic experiment corpus above all)
are pure functions of a small config — so they are cached on disk,
keyed by a hash of that config, and shared by every process that asks
for the same one.  The cache is what lets a multi-worker suite build
the corpus once instead of once per worker, and what lets the *next*
run skip the build entirely.

Design points:

- **Content-addressed keys.**  The file name is a SHA-256 over the
  canonical JSON of ``(kind, config, version)``.  Any config change —
  or a format-version bump — lands on a different key, so invalidation
  is automatic and old entries are simply unreachable.
- **Pickle-free.**  Entries are JSONL through the same atomic
  :func:`repro.io.jsonl.write_jsonl` path every other dataset uses: a
  header line carrying ``kind``/``version``/``config``/``count``, then
  one record per line.  A cache file is inspectable with ``head`` and
  survives interpreter upgrades.
- **Corruption is a miss, never a crash.**  A truncated, torn, or
  header-mismatched file makes :meth:`ArtifactCache.get` return None
  (counted as ``artifacts.corrupt``); the caller regenerates and the
  next :meth:`ArtifactCache.put` atomically replaces the bad entry.
- **End-to-end verification.**  Every entry's header carries a SHA-256
  over the exact body bytes (``"sha256"``), written by :meth:`put` and
  recomputed from the raw file on every :meth:`ArtifactCache.get` —
  so a bit-flip that still *parses* (the failure mode a header check
  cannot see) is caught and becomes a miss, counted as
  ``artifacts.integrity_failures``.  :meth:`ArtifactCache.read_verified`
  is the strict variant: it raises a typed
  :class:`repro.errors.IntegrityError` instead of returning None, for
  callers (snapshot import, ``repro integrity scrub``) that must
  *report* damage rather than silently regenerate around it.
- **Safe under racing writers.**  Writes go to a private temp file and
  are renamed over the destination, so two processes racing on one key
  both produce valid files and the last rename wins.
  :meth:`ArtifactCache.get_or_create` additionally takes an advisory
  ``flock`` per key so only one process pays the generation cost while
  the others wait and then read the finished entry.
- **Killed writers leave no litter.**  A writer that dies mid-``put``
  (OOM kill, segfault) strands its private temp file;
  :meth:`ArtifactCache.sweep_orphans` reaps stale ``*.tmp`` files —
  automatically on construction, and with zero grace after the
  parallel runtime detects a worker crash (all pool writers are dead
  then).  The half-written entry itself was never renamed into place,
  so readers still see either the old entry or a miss.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.errors import CacheLockTimeout, IntegrityError
from repro.io.jsonl import read_jsonl, write_jsonl

try:  # pragma: no cover - fcntl is always present on the POSIX targets
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactCache",
    "artifact_key",
    "body_digest",
]

#: Bump to invalidate every existing cache entry (serialization change).
#: v2 added the mandatory ``"sha256"`` body digest to the header, so
#: pre-digest entries land on unreachable keys instead of failing
#: verification one by one.
ARTIFACT_FORMAT_VERSION = 2

#: Injection point offered to :meth:`FaultInjector.damage_file` after
#: every successful :meth:`ArtifactCache.put` — chaos tests arm it with
#: ``bitrot``/``truncate`` to corrupt completed entries deterministically.
DAMAGE_POINT = "artifacts:damage"

#: How long :meth:`ArtifactCache._key_lock` waits for a per-key lock
#: before giving up with :class:`repro.errors.CacheLockTimeout`.  Sized
#: for the slowest legitimate holder (a full-preset corpus generation),
#: not for a wedged one.
DEFAULT_LOCK_TIMEOUT = 120.0

#: How often the non-blocking lock acquisition retries while waiting.
_LOCK_POLL_SECONDS = 0.05

#: Grace period for the construction-time orphan sweep: a ``*.tmp``
#: younger than this may belong to a live writer in another process and
#: is left alone; older ones are orphans from killed writers.
ORPHAN_GRACE_SECONDS = 600.0


def artifact_key(kind: str, config: dict, version: int) -> str:
    """The content address for ``(kind, config, version)``.

    A SHA-256 hex digest over canonical JSON, so key equality is exactly
    config equality and any drift (including a version bump) misses.
    """
    payload = json.dumps(
        {"kind": kind, "config": config, "version": version},
        sort_keys=True,
        ensure_ascii=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def body_digest(records: Iterable[dict]) -> str:
    """SHA-256 over the canonical JSONL encoding of ``records``.

    Byte-identical to what :func:`repro.io.jsonl.write_jsonl` lands on
    disk for the same records (same canonical ``json.dumps``, one
    ``\\n`` per line) — so a digest recomputed from a file's raw bytes
    after the header line can be compared directly against one computed
    from in-memory records, with no re-parse in between.
    """
    digest = hashlib.sha256()
    for record in records:
        line = json.dumps(record, ensure_ascii=False, sort_keys=True) + "\n"
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


def _metrics():
    """The active metrics registry (lazy import; see repro.io.jsonl)."""
    from repro.obs.metrics import current_metrics

    return current_metrics()


def _damage_fault(point: str, path: Path) -> None:
    """Offer a completed file to the process-wide injector for damage.

    The post-write counterpart of :func:`repro.io.jsonl._check_fault`:
    chaos tests arm ``bitrot``/``truncate`` at ``point`` and this hands
    them the finished entry.  Lazy import to avoid a cycle; with no
    injector installed the cost is one ``sys.modules`` lookup.
    """
    from repro.runtime.faultinject import current_fault_injector

    injector = current_fault_injector()
    if injector is not None:
        injector.damage_file(point, path)


class ArtifactCache:
    """A directory of content-addressed JSONL artifacts.

    Args:
        root: Cache directory (created on first write).
        version: Format version baked into every key; bumping it
            orphans all previous entries (see
            :data:`ARTIFACT_FORMAT_VERSION`).
        sweep: Sweep stale orphaned ``*.tmp`` files (from writers
            killed mid-:meth:`put`) on construction; see
            :meth:`sweep_orphans`.
        lock_timeout: Ceiling in seconds on waiting for another
            process's per-key generation lock in
            :meth:`get_or_create`; a holder wedged past it raises
            :class:`repro.errors.CacheLockTimeout` internally and the
            caller falls back to computing without the cache.

    Example:
        >>> import tempfile
        >>> cache = ArtifactCache(tempfile.mkdtemp())
        >>> cache.get("squares", {"n": 3}) is None
        True
        >>> _ = cache.put("squares", {"n": 3}, [{"i": i, "sq": i * i} for i in range(3)])
        >>> [r["sq"] for r in cache.get("squares", {"n": 3})]
        [0, 1, 4]
    """

    def __init__(
        self, root: str | Path, *, version: int = ARTIFACT_FORMAT_VERSION,
        sweep: bool = True, lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        self.root = Path(root)
        self.version = version
        self.lock_timeout = lock_timeout
        if sweep:
            # Writers killed mid-put (SIGKILL, OOM) never reach their
            # cleanup handler and strand a private temp file; sweep
            # stale ones so a crashy campaign does not leak disk.
            self.sweep_orphans(max_age_seconds=ORPHAN_GRACE_SECONDS)

    def path_for(self, kind: str, config: dict) -> Path:
        """Where the entry for ``(kind, config)`` lives (may not exist)."""
        return self.root / kind / f"{artifact_key(kind, config, self.version)}.jsonl"

    # -- read ----------------------------------------------------------

    def get(self, kind: str, config: dict) -> list[dict] | None:
        """The cached records for ``(kind, config)``, or None on a miss.

        Every failure mode — absent file, torn final line, malformed
        JSON, header mismatch, wrong record count — is a miss: the
        caller regenerates and overwrites.  An invalid *existing* file
        is additionally counted as ``artifacts.corrupt``.
        """
        path = self.path_for(kind, config)
        try:
            rows = list(read_jsonl(path))
        except FileNotFoundError:
            _metrics().count("artifacts.misses")
            return None
        except Exception:  # noqa: BLE001 - any decode failure is a miss
            self._count_verification_failure()
            return None
        if not rows:
            self._count_verification_failure()
            return None
        header, records = rows[0], rows[1:]
        if (
            header.get("artifact") != kind
            or header.get("version") != self.version
            or header.get("config") != config
            or header.get("count") != len(records)
        ):
            self._count_verification_failure()
            return None
        declared = header.get("sha256")
        if not isinstance(declared, str) or self._body_sha256(path) != declared:
            # The entry *parses* but its bytes are not the ones the
            # writer hashed — bit-rot, a torn replication copy, or a
            # tampered body.  Only the end-to-end digest catches this.
            self._count_verification_failure()
            return None
        _metrics().count("artifacts.hits")
        return records

    @staticmethod
    def _count_verification_failure() -> None:
        """Count one present-but-unverifiable entry.

        Three counters move together: the read is a miss, the file is
        corrupt (the pre-digest name, kept for dashboard continuity),
        and end-to-end verification failed (``integrity_failures`` —
        what ``repro serve`` and the scrubber docs reference).  A
        merely *absent* entry is a plain miss and touches neither of
        the damage counters.
        """
        _metrics().count("artifacts.misses")
        _metrics().count("artifacts.corrupt")
        _metrics().count("artifacts.integrity_failures")

    def read_verified(self, kind: str, config: dict) -> list[dict]:
        """The cached records, or a typed error — never a silent miss.

        The strict twin of :meth:`get`, for callers that must *surface*
        damage (snapshot import, ``repro integrity scrub``, smoke
        scripts proving corruption is detected) instead of regenerating
        around it.  Raises :class:`repro.errors.IntegrityError` — one
        line, CLI-ready — on an absent, torn, header-mismatched, or
        digest-mismatched entry.
        """
        path = self.path_for(kind, config)
        records = self.get(kind, config)
        if records is None:
            damage = "missing" if not path.exists() else "corrupt"
            raise IntegrityError(
                f"cache entry failed verification: {path.name}",
                path=str(path),
                kind=kind,
                damage=damage,
                stage="read",
            )
        return records

    @staticmethod
    def _body_sha256(path: Path) -> str | None:
        """SHA-256 of the raw bytes after the header line, or None.

        Digests the file exactly as written — not a re-dump of parsed
        records — so corruption hiding in bytes the parser normalizes
        away still mismatches.
        """
        try:
            data = path.read_bytes()
        except OSError:
            return None
        cut = data.find(b"\n") + 1  # 0 (whole file) when the header is torn
        return hashlib.sha256(data[cut:]).hexdigest()

    # -- write ---------------------------------------------------------

    def put(self, kind: str, config: dict, records: Iterable[dict]) -> Path:
        """Store ``records`` for ``(kind, config)``; returns the path.

        The write is atomic (private temp file + rename), so concurrent
        writers on the same key each land a complete file and readers
        never observe a torn one.
        """
        from repro.io.jsonl import _check_fault

        body = list(records)
        header = {
            "artifact": kind,
            "version": self.version,
            "config": config,
            "count": len(body),
            "sha256": body_digest(body),
        }
        path = self.path_for(kind, config)
        _check_fault("artifacts:put")
        write_jsonl(path, [header] + body)
        _metrics().count("artifacts.writes")
        # Completed entries are offered to the chaos injector so tests
        # can bit-rot or truncate them deterministically post-rename.
        _damage_fault(DAMAGE_POINT, path)
        return path

    def get_or_create(
        self,
        kind: str,
        config: dict,
        factory: Callable[[], Iterable[dict]],
    ) -> list[dict]:
        """The cached records, generating (once) on a miss.

        Misses serialize through a per-key advisory file lock, so when
        several processes race on the same key only the first runs
        ``factory``; the rest block briefly and then read its output.
        The wait is bounded by ``lock_timeout``: a lock holder wedged
        past it (stopped, hung, undead) is treated as unavailable and
        this process computes *without* the cache — the entry is not
        written (the holder may still be mid-generation), but the
        caller gets its records instead of blocking forever.  Such
        fallbacks are counted as ``artifacts.lock_timeouts``.
        """
        from contextlib import ExitStack

        records = self.get(kind, config)
        if records is not None:
            return records
        with ExitStack() as stack:
            try:
                # enter_context runs acquisition eagerly, so a timeout
                # here cannot be confused with one raised by a factory
                # that itself uses a (nested) cache.
                stack.enter_context(self._key_lock(kind, config))
            except CacheLockTimeout:
                return list(factory())
            # Re-check under the lock: another process may have
            # generated the entry while this one waited.
            records = self.get(kind, config)
            if records is not None:
                return records
            records = list(factory())
            self.put(kind, config, records)
            return records

    # -- crash hygiene -------------------------------------------------

    def sweep_orphans(self, max_age_seconds: float = 0.0) -> int:
        """Delete orphaned writer temp files; returns how many.

        A ``*.tmp`` under the cache root is a private scratch file from
        :func:`repro.io.jsonl.write_jsonl`; one that outlives its
        writer means the writer was killed mid-put.  ``max_age_seconds``
        spares files younger than that (live writers elsewhere); the
        supervisor sweeps with 0.0 after a worker crash, when every
        pool writer is known dead.  Sweeps are counted as
        ``artifacts.orphans_swept``.
        """
        removed = 0
        if not self.root.exists():
            return removed
        cutoff = time.time() - max_age_seconds
        for path in self.root.rglob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except FileNotFoundError:  # pragma: no cover - racing sweeper
                continue
        if removed:
            _metrics().count("artifacts.orphans_swept", removed)
        return removed

    # -- invalidation --------------------------------------------------

    def invalidate(self, kind: str | None = None) -> int:
        """Delete cached entries (all kinds when ``kind`` is None).

        Returns the number of entries removed.  Lock files are removed
        alongside their entries.
        """
        removed = 0
        if not self.root.exists():
            return removed
        kinds = [kind] if kind is not None else [
            p.name for p in self.root.iterdir() if p.is_dir()
        ]
        for name in kinds:
            directory = self.root / name
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                if path.suffix == ".jsonl":
                    removed += 1
                path.unlink(missing_ok=True)
        _metrics().count("artifacts.invalidated", removed)
        return removed

    # -- locking -------------------------------------------------------

    @contextmanager
    def _key_lock(self, kind: str, config: dict) -> Iterator[None]:
        """An advisory exclusive lock scoped to one cache key.

        Acquisition is non-blocking under a deadline: a bare
        ``flock(LOCK_EX)`` would wait forever on a holder that wedged
        after taking the lock, so this polls ``LOCK_NB`` every
        :data:`_LOCK_POLL_SECONDS` and raises
        :class:`repro.errors.CacheLockTimeout` (counted as
        ``artifacts.lock_timeouts``) once ``lock_timeout`` expires.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        path = self.path_for(kind, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock_path = path.with_suffix(".lock")
        with lock_path.open("a") as handle:
            deadline = time.monotonic() + self.lock_timeout
            while True:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except BlockingIOError:
                    if time.monotonic() >= deadline:
                        _metrics().count("artifacts.lock_timeouts")
                        raise CacheLockTimeout(
                            f"cache lock {lock_path} still held after "
                            f"{self.lock_timeout}s (wedged holder?)",
                            lock_path=str(lock_path),
                            timeout=self.lock_timeout,
                            stage="lock",
                        ) from None
                    time.sleep(min(_LOCK_POLL_SECONDS, self.lock_timeout))
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
