"""repro: a human-centered networking research toolkit.

A full-scope reproduction of "Unveiling and Engaging with the Humans of
Networking Research" (HotNets '25).  The paper is a position paper —
it ships arguments, not artifacts — so this library operationalizes
those arguments (see DESIGN.md for the substitution map):

- :mod:`repro.core` -- PAR engagement ledgers, ethnographic fieldwork,
  positionality statements, and the Section-5 recommendations audit.
- :mod:`repro.qualcoding` -- qualitative coding with inter-rater
  reliability, co-occurrence, saturation, and theme extraction.
- :mod:`repro.textmine` -- from-scratch text mining substrate.
- :mod:`repro.bibliometrics` -- corpus model, synthetic corpus
  generator, method-mention detection, concentration metrics.
- :mod:`repro.surveys` -- instruments, synthetic respondents, and
  reachability-biased sampling.
- :mod:`repro.netsim` -- the BGP/IXP interconnection simulator (Telmex
  and Brazil/DE-CIX case studies) and the community mesh simulator
  (Seattle Community Network material).
- :mod:`repro.ethics` -- consent, anonymization, power dynamics, IRB
  checklists.
- :mod:`repro.experiments` -- the E1-E13 experiment suite EXPERIMENTS.md
  reports on.
- :mod:`repro.runtime` -- fault-tolerant suite runner (isolation,
  retries, deadlines, checkpoint/resume) and the deterministic
  fault-injection harness.
- :mod:`repro.obs` -- observability: hierarchical tracing, a metrics
  registry, per-experiment profiling, and trace reports
  (``repro obs report``).
- :mod:`repro.errors` -- the toolkit-wide error taxonomy.

Quickstart: see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"
