"""Benchmark for experiment E6: regenerates its result table(s).

See the E6 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e06.txt.
"""

from _harness import run_and_record


def test_e06_telmex_evasion(benchmark):
    run_and_record("E6", benchmark)
