"""Benchmark for experiment E13: regenerates its result table(s).

See the E13 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e13.txt.
"""

from _harness import run_and_record


def test_e13_congestion_collapse(benchmark):
    run_and_record("E13", benchmark)
