"""Benchmark for experiment E7: regenerates its result table(s).

See the E7 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e07.txt.
"""

from _harness import run_and_record


def test_e07_ixp_gravity(benchmark):
    run_and_record("E7", benchmark)
