"""Benchmark for experiment E2: regenerates its result table(s).

See the E2 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e02.txt.
"""

from _harness import run_and_record


def test_e02_positionality_prevalence(benchmark):
    run_and_record("E2", benchmark)
