"""Benchmark for experiment E11: regenerates its result table(s).

See the E11 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e11.txt.
"""

from _harness import run_and_record


def test_e11_recommendations_audit(benchmark):
    run_and_record("E11", benchmark)
