"""Scale curves for the columnar corpus generator and experiment scan.

Measures papers/second and peak RSS at 10⁴/10⁵/10⁶ papers, sequential
vs shard-parallel, streamed vs materialized — plus the experiment
suite's analytics fold (``shardscan.scan_corpus``, the columnar
backend's hot path) over each streamed corpus — and checks the
invariants the design promises: the corpus fingerprint is identical at
every worker count and on warm-cache replays, at most one shard is
resident during streamed generation *and* during the scan, and
streaming peak RSS grows sub-linearly in corpus size for both phases.

Run it directly (not under pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_corpus_scale.py
    PYTHONPATH=src python benchmarks/bench_corpus_scale.py --sizes 10000 100000

Every measurement point runs in a **fresh subprocess** (``--point``
re-entry): ``ru_maxrss`` is a process-lifetime high-water mark, so a
second, smaller point measured in the same process would read as the
first point's peak.  Results land in
``benchmarks/results/corpus_scale.json`` and a rendered table on
stdout.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).parent / "results" / "corpus_scale.json"

#: Materialized (all shards resident) points are only run up to this
#: size; past it the whole point of streaming is that you shouldn't.
DEFAULT_MAX_MATERIALIZED = 100_000


def _measure_point(spec: dict) -> dict:
    """Run one measurement in this (fresh) process and return its row."""
    from _harness import measure_peak_rss, peak_rss_bytes

    from repro.bibliometrics.shardgen import (
        ShardedCorpusConfig,
        generate_columnar_corpus,
    )

    config = ShardedCorpusConfig(
        start_year=2016,
        end_year=2025,
        seed=0,
        total_papers=spec["papers"],
        shard_size=spec["shard_size"],
    )
    workers = spec["workers"]
    stream = spec["stream"]
    row = dict(spec)

    with tempfile.TemporaryDirectory(prefix="bench-corpus-") as tmp:
        cache_dir = tmp if (stream or spec.get("warm")) else None

        if spec.get("scan"):
            from repro.bibliometrics.shardscan import scan_corpus

            # Build (streamed, cached) outside the measured region: the
            # point tracks the scan fold the experiments run on, with
            # shards paged in from disk one at a time.
            corpus = generate_columnar_corpus(
                config, workers=workers, cache_dir=cache_dir, stream=True
            )

            def scan():
                started = time.perf_counter()
                aggregates = scan_corpus(corpus)
                return aggregates, time.perf_counter() - started

            (aggregates, seconds), rss_delta = measure_peak_rss(scan)
            assert corpus.resident_shards() <= 1, corpus.resident_shards()
            assert aggregates.n_papers == spec["papers"], aggregates.n_papers
            row.update(
                seconds=seconds,
                papers_per_second=spec["papers"] / seconds if seconds else None,
                fingerprint=corpus.fingerprint(),
                resident_shards=corpus.resident_shards(),
                rss_delta_bytes=rss_delta,
                peak_rss_bytes=peak_rss_bytes(),
            )
            return row

        def generate():
            started = time.perf_counter()
            corpus = generate_columnar_corpus(
                config, workers=workers, cache_dir=cache_dir, stream=stream
            )
            fingerprint = corpus.fingerprint()
            return corpus, fingerprint, time.perf_counter() - started

        if spec.get("warm"):
            # Cold pass fills the cache; the measured pass replays it.
            generate()
        (corpus, fingerprint, seconds), rss_delta = measure_peak_rss(generate)
        if stream:
            assert corpus.resident_shards() <= 1, corpus.resident_shards()
        row.update(
            seconds=seconds,
            papers_per_second=spec["papers"] / seconds if seconds else None,
            fingerprint=fingerprint,
            rss_delta_bytes=rss_delta,
            peak_rss_bytes=peak_rss_bytes(),
        )
    return row


def _run_point(spec: dict) -> dict:
    """Run one point in a fresh subprocess; returns its result row."""
    proc = subprocess.run(
        [sys.executable, __file__, "--point", json.dumps(spec)],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"point {spec} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _label(row: dict) -> str:
    mode = "streamed" if row["stream"] else "materialized"
    warm = " warm" if row.get("warm") else ""
    phase = " scan" if row.get("scan") else ""
    return f"{row['papers']:>9,} papers  w={row['workers']}  {mode}{warm}{phase}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[10_000, 100_000, 1_000_000],
        help="corpus sizes to measure (default: 1e4 1e5 1e6)",
    )
    parser.add_argument(
        "--workers-list", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts for the streamed points (default: 1 2 4)",
    )
    parser.add_argument(
        "--max-materialized", type=int, default=DEFAULT_MAX_MATERIALIZED,
        help="largest size also measured fully materialized",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_PATH),
        help="JSON results path",
    )
    parser.add_argument("--point", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.point:
        print(json.dumps(_measure_point(json.loads(args.point))))
        return 0

    import os

    cpu_count = os.cpu_count() or 1
    rows: list[dict] = []
    for papers in sorted(args.sizes):
        shard_size = max(2_500, min(50_000, papers // 8))
        base = {"papers": papers, "shard_size": shard_size}
        points: list[dict] = []
        if papers <= args.max_materialized:
            points.append({**base, "workers": 1, "stream": False})
        for workers in args.workers_list:
            points.append({**base, "workers": workers, "stream": True})
        points.append({**base, "workers": 1, "stream": True, "warm": True})
        points.append({**base, "workers": 1, "stream": True, "scan": True})
        for spec in points:
            row = _run_point(spec)
            rows.append(row)
            print(f"{_label(row)}  {row['papers_per_second']:>10,.0f} papers/s"
                  f"  peak-RSS Δ {row['rss_delta_bytes'] / 2**20:>8.1f} MiB",
                  flush=True)

    # -- invariants ------------------------------------------------------
    notes: list[str] = []
    ok = True
    for papers in sorted(args.sizes):
        prints = {row["fingerprint"] for row in rows if row["papers"] == papers}
        if len(prints) != 1:
            ok = False
            notes.append(f"FINGERPRINT DRIFT at {papers} papers: {prints}")
    if ok:
        notes.append(
            "fingerprints identical across worker counts, streamed/"
            "materialized, and cold/warm cache at every size"
        )

    streamed = {
        row["papers"]: row
        for row in rows
        if row["stream"] and row["workers"] == 1 and not row.get("warm")
        and not row.get("scan")
    }
    sizes = sorted(streamed)
    for small, large in zip(sizes, sizes[1:]):
        growth = (large / small)
        rss_small = max(1, streamed[small]["rss_delta_bytes"])
        rss_growth = streamed[large]["rss_delta_bytes"] / rss_small
        verdict = "sub-linear" if rss_growth < growth else "NOT sub-linear"
        notes.append(
            f"streaming peak-RSS {small:,}->{large:,} papers: "
            f"{rss_growth:.2f}x for {growth:.0f}x papers ({verdict})"
        )
        if rss_growth >= growth:
            ok = False

    scanned = {row["papers"]: row for row in rows if row.get("scan")}
    sizes = sorted(scanned)
    for small, large in zip(sizes, sizes[1:]):
        growth = (large / small)
        rss_small = max(1, scanned[small]["rss_delta_bytes"])
        rss_growth = scanned[large]["rss_delta_bytes"] / rss_small
        verdict = "sub-linear" if rss_growth < growth else "NOT sub-linear"
        notes.append(
            f"scan peak-RSS {small:,}->{large:,} papers: "
            f"{rss_growth:.2f}x for {growth:.0f}x papers ({verdict}, "
            f"<=1 resident shard asserted per point)"
        )
        if rss_growth >= growth:
            ok = False

    best_multi = max(
        (row for row in rows if row["stream"] and row["workers"] > 1
         and not row.get("warm")),
        key=lambda r: r["papers_per_second"],
        default=None,
    )
    if best_multi is not None:
        base_row = streamed.get(best_multi["papers"])
        if base_row:
            speedup = (
                best_multi["papers_per_second"] / base_row["papers_per_second"]
            )
            notes.append(
                f"best shard-parallel speedup: {speedup:.2f}x at "
                f"workers={best_multi['workers']} on a {cpu_count}-CPU host"
            )
            if cpu_count < 4:
                notes.append(
                    f"honest note: this host has {cpu_count} CPU(s); "
                    "process-parallel speedup is bounded by physical "
                    "cores, so ~1x here is expected — the >=3x claim "
                    "applies to multi-core hosts"
                )

    payload = {
        "cpu_count": cpu_count,
        "rows": rows,
        "notes": notes,
        "ok": ok,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print()
    for note in notes:
        print(f"- {note}")
    print(f"\nwrote {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
