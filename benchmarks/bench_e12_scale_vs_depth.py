"""Benchmark for experiment E12: regenerates its result table(s).

See the E12 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e12.txt.
"""

from _harness import run_and_record


def test_e12_scale_vs_depth(benchmark):
    run_and_record("E12", benchmark)
