"""Benchmark for experiment E1: regenerates its result table(s).

See the E1 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e01.txt.
"""

from _harness import run_and_record


def test_e01_method_adoption(benchmark):
    run_and_record("E1", benchmark)
