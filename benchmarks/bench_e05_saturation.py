"""Benchmark for experiment E5: regenerates its result table(s).

See the E5 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e05.txt.
"""

from _harness import run_and_record


def test_e05_saturation(benchmark):
    run_and_record("E5", benchmark)
