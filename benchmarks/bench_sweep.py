"""Sweep-engine wall clock across worker counts, plus cache hit rate.

Expands one grid (seed x n_eyeballs on E7, six points) and times it
cold at 1 and 2 workers — each against its own empty artifact cache so
the comparison is fair — then re-runs the workers=2 grid against its
now-warm cache and asserts every point replays as ``source="cache"``.
Persists one JSON artifact (``results/sweep.json``) with per-run wall
clock, speedup over the sequential cold run, and the warm-run hit rate.

Every run must also produce the *same* report fingerprint — the sweep
report zeroes durations and drops the run/cache source exactly so that
worker count and cache state cannot change the result identity.
"""

import json
import os
import time

from _harness import RESULTS_DIR

from repro.experiments.sweep import run_sweep

EXPERIMENT_ID = "E7"
GRID = {"seed": [0, 1, 2], "n_eyeballs": [12, 18]}


def _timed_sweep(cache_dir, workers):
    start = time.perf_counter()
    report = run_sweep(
        EXPERIMENT_ID, GRID, preset="fast", workers=workers,
        cache_dir=str(cache_dir),
    )
    wall = time.perf_counter() - start
    assert report.ok, [
        point.record.error for point in report.points if point.record.error
    ]
    return report, wall


def test_sweep_wall_clock_and_cache_hit_rate(tmp_path):
    runs = []
    fingerprints = set()
    for workers in (1, 2):
        report, wall = _timed_sweep(tmp_path / f"cold-{workers}", workers)
        assert all(point.source == "run" for point in report.points)
        fingerprints.add(report.fingerprint())
        runs.append({
            "workers": workers, "cache": "cold", "wall_seconds": wall,
            "cache_hit_rate": 0.0,
        })

    warm, wall = _timed_sweep(tmp_path / "cold-2", 2)
    hits = sum(1 for point in warm.points if point.source == "cache")
    assert hits == len(warm.points), "warm re-run missed the result cache"
    fingerprints.add(warm.fingerprint())
    runs.append({
        "workers": 2, "cache": "warm", "wall_seconds": wall,
        "cache_hit_rate": hits / len(warm.points),
    })
    assert len(fingerprints) == 1, "runs disagreed on the sweep report"

    sequential = runs[0]["wall_seconds"]
    payload = {
        "benchmark": "sweep",
        "experiment_id": EXPERIMENT_ID,
        "grid": GRID,
        "points": len(warm.points),
        "cpu_count": os.cpu_count(),
        "fingerprint": fingerprints.pop(),
        "runs": [
            {
                **run,
                "speedup_vs_sequential": (
                    sequential / run["wall_seconds"]
                    if run["wall_seconds"] else None
                ),
            }
            for run in runs
        ],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "sweep.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
