"""Micro-benchmarks for the library's hot primitives.

The experiment benchmarks (bench_e01..e12) time whole studies; these
time the individual kernels they are built from, so a performance
regression can be localized.  The scanner and tf-idf kernels also
append a row to the bench ledger through the *same* fixed-workload
runners ``repro bench run`` uses, so `repro bench gate` sees them no
matter which entry point did the measuring.
"""

import random

from _harness import LEDGER_PATH

from repro.bench.hotpaths import run_hot_path
from repro.bench.ledger import append_entries
from repro.bibliometrics.methods_detect import (
    METHOD_FAMILIES,
    LexiconScanner,
    detect_methods,
)
from repro.netsim.bgp.asys import AS, ASGraph
from repro.netsim.bgp.routing import propagate_routes
from repro.netsim.community.congestion import CprAllocator, allocate_maxmin
from repro.qualcoding.agreement import cohens_kappa, krippendorff_alpha
from repro.textmine.tfidf import TfidfVectorizer

_RNG = random.Random(0)

_ABSTRACT = (
    "This paper studies peering policies and the practices surrounding "
    "them. We conducted semi-structured interviews with 24 operators and "
    "complement the findings with a measurement study spanning 12 months "
    "of packet traces collected from 9 vantage points. A testbed "
    "deployment validates the design. "
) * 4

_DOCS = [
    " ".join(
        _RNG.choice(
            ("mesh", "community", "network", "peering", "transit", "ixp",
             "backhaul", "datacenter", "latency", "operator")
        )
        for _ in range(120)
    )
    for _ in range(200)
]

_LABELS_A = [_RNG.choice("abc") for _ in range(5000)]
_LABELS_B = [
    label if _RNG.random() > 0.15 else _RNG.choice("abc")
    for label in _LABELS_A
]


def _transit_hierarchy(n_stubs=120):
    graph = ASGraph()
    graph.add_as(AS(1))
    graph.add_as(AS(2))
    graph.add_as(AS(3))
    graph.add_peering(1, 2)
    graph.add_customer(provider=1, customer=3)
    for i in range(n_stubs):
        asn = 100 + i
        graph.add_as(AS(asn))
        graph.add_customer(provider=(1, 2, 3)[i % 3], customer=asn)
    return graph


def test_method_detection_speed(benchmark):
    mentions = benchmark(detect_methods, _ABSTRACT)
    assert mentions


def test_method_detection_multipass_reference(benchmark):
    """Per-family ``finditer`` oracle the single-pass scanner replaced.

    Kept as a benchmark so the single-pass speedup stays measurable:
    ``test_method_detection_speed`` should run at least ~3x faster than
    this reference on the same text.
    """
    scanner = LexiconScanner(METHOD_FAMILIES)
    mentions = benchmark(scanner.detect_multipass, _ABSTRACT)
    assert mentions == detect_methods(_ABSTRACT)


def test_tfidf_fit_transform_speed(benchmark):
    matrix = benchmark(lambda: TfidfVectorizer().fit_transform(_DOCS))
    assert matrix.shape[0] == len(_DOCS)


def test_cohens_kappa_speed(benchmark):
    kappa = benchmark(cohens_kappa, _LABELS_A, _LABELS_B)
    assert 0.5 < kappa <= 1.0


def test_krippendorff_alpha_speed(benchmark):
    rows = list(zip(_LABELS_A, _LABELS_B))
    alpha = benchmark(krippendorff_alpha, rows)
    assert 0.5 < alpha <= 1.0


def test_route_propagation_speed(benchmark):
    graph = _transit_hierarchy()
    table = benchmark(propagate_routes, graph)
    assert table.full_path(100, 101) is not None


def test_maxmin_allocation_speed(benchmark):
    demands = [_RNG.uniform(0.1, 10.0) for _ in range(200)]
    result = benchmark(allocate_maxmin, demands, 300.0)
    assert result.utilization > 0


def test_cpr_allocation_speed(benchmark):
    demands = [_RNG.uniform(0.1, 10.0) for _ in range(200)]

    def run():
        allocator = CprAllocator()
        for _ in range(10):
            allocator.allocate(demands, 300.0)
        return allocator

    allocator = benchmark(run)
    assert allocator is not None


def test_hot_path_ledger_append():
    """Record the scanner and tf-idf hot paths in the bench ledger."""
    entries = run_hot_path("scanner") + run_hot_path("tfidf")
    assert append_entries(LEDGER_PATH, entries) == len(entries)
    for entry in entries:
        assert entry["value"] > 0
