"""Shared harness for the experiment benchmarks.

Each ``bench_eXX_*.py`` file wraps one experiment from
:mod:`repro.experiments` in pytest-benchmark, asserts the experiment's
shape checks (the DESIGN.md "expected shape" column), and persists two
artifacts under ``benchmarks/results/``:

- ``eXX.txt`` — the rendered result tables, pasted into EXPERIMENTS.md;
- ``eXX.json`` — per-round stage timings captured by the
  :mod:`repro.obs` tracer, the baseline every perf PR compares against.

Every run also appends one normalized row per experiment to the bench
ledger (``benchmarks/results/BENCH_history.json``) so ``repro bench
report``/``gate`` see the suite benchmarks alongside the CLI hot paths.

Nothing is persisted when a shape check fails: a broken run must not
overwrite a good baseline.

Benchmarks run each experiment once per round (``pedantic``): the
experiments are deterministic whole-system runs, not microbenchmarks,
so statistical repetition buys nothing but wall-clock.
"""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path
from typing import Any, Callable

from repro.bench.ledger import append_entries, make_entry
from repro.experiments.registry import ExperimentResult, get_experiment, make_spec
from repro.obs import Tracer, use_tracer
from repro.obs.metrics import percentile

RESULTS_DIR = Path(__file__).parent / "results"
LEDGER_PATH = RESULTS_DIR / "BENCH_history.json"

#: ``ru_maxrss`` unit: kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def peak_rss_bytes() -> int:
    """This process's peak RSS high-water mark, child-inclusive, in bytes.

    ``RUSAGE_SELF`` plus ``RUSAGE_CHILDREN`` (waited-for descendants —
    pool workers included), so a measurement over a shard-parallel run
    charges the workers' memory too.
    """
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kb + child_kb) * _RU_MAXRSS_UNIT


def measure_peak_rss(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak-RSS delta in bytes)``.

    The delta is against the pre-call high-water mark.  ``ru_maxrss``
    is monotone for a process's lifetime, so the delta is only
    meaningful when ``fn`` is the largest thing the process has run —
    back-to-back measurements of *descending* size read as zero.  For
    honest curves, run each point in a fresh subprocess (what
    ``bench_corpus_scale.py`` does) and treat the delta as a floor.
    """
    before = peak_rss_bytes()
    result = fn()
    return result, max(0, peak_rss_bytes() - before)


def _make_runner(experiment_id: str, workers: int):
    """A callable running the experiment at the requested worker count.

    ``workers == 1`` calls the experiment directly (the historical
    baseline path); ``workers > 1`` routes through the suite runner so
    the measurement includes pool dispatch and shard merging.
    """
    if workers == 1:
        return get_experiment(experiment_id)

    def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
        from repro.runtime.runner import SuiteRunner

        report = SuiteRunner(workers=workers).run_all(
            [experiment_id], seed=seed, fast=fast
        )
        record = report.records[0]
        if record.result is None:
            raise AssertionError(
                f"{experiment_id} failed under workers={workers}: "
                f"{record.error_type}: {record.error}"
            )
        return record.result

    return run


def _sequential_mean(timings_path: Path) -> float | None:
    """The last recorded workers=1 mean for this experiment, if any."""
    if not timings_path.exists():
        return None
    try:
        previous = json.loads(timings_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if previous.get("workers", 1) != 1:
        return previous.get("sequential_mean_run_seconds")
    return previous.get("mean_run_seconds")


def run_and_record(
    experiment_id: str,
    benchmark,
    seed: int = 0,
    fast: bool = True,
    rounds: int = 3,
    workers: int = 1,
) -> ExperimentResult:
    """Benchmark one experiment, assert its shape, persist its artifacts."""
    runner = _make_runner(experiment_id, workers)
    tracer = Tracer()
    with use_tracer(tracer):
        result = benchmark.pedantic(
            runner, kwargs={"seed": seed, "fast": fast}, rounds=rounds,
            iterations=1,
        )

    # Assert before persisting: a failing shape must not replace the
    # last good baseline on disk.
    failing = {name for name, ok in result.checks.items() if not ok}
    assert not failing, f"{experiment_id} shape checks failed: {failing}"

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
    out_path.write_text(result.render() + "\n", encoding="utf-8")

    stages = [
        {"name": span.name, "round": index, "duration": span.duration}
        for index, span in enumerate(tracer.finished)
    ]
    durations = [stage["duration"] for stage in stages]
    mean = sum(durations) / len(durations) if durations else 0.0
    timings_path = RESULTS_DIR / f"{experiment_id.lower()}.json"
    sequential_mean = mean if workers == 1 else _sequential_mean(timings_path)
    timings = {
        "experiment_id": experiment_id,
        "seed": seed,
        "fast": fast,
        "rounds": len(durations),
        "workers": workers,
        "stages": stages,
        "mean_run_seconds": mean,
        "min_run_seconds": min(durations, default=0.0),
        "max_run_seconds": max(durations, default=0.0),
        # Speedup over the last recorded workers=1 mean; 1.0 by
        # definition for a sequential run, null when no baseline exists.
        "sequential_mean_run_seconds": sequential_mean,
        "speedup_vs_sequential": (
            sequential_mean / mean if sequential_mean and mean else None
        ),
    }
    timings_path.write_text(
        json.dumps(timings, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    preset = "fast" if fast else "full"
    append_entries(LEDGER_PATH, [make_entry(
        f"suite.{experiment_id}",
        mean,
        metric="mean_run_seconds",
        config_hash=make_spec(experiment_id, preset, seed=seed).config_hash(),
        context={
            "rounds": len(durations),
            "workers": workers,
            "preset": preset,
            "p50_run_seconds": percentile(durations, 0.50),
            "p95_run_seconds": percentile(durations, 0.95),
        },
    )])
    return result
