"""Shared harness for the experiment benchmarks.

Each ``bench_eXX_*.py`` file wraps one experiment from
:mod:`repro.experiments` in pytest-benchmark, asserts the experiment's
shape checks (the DESIGN.md "expected shape" column), and writes the
rendered result tables to ``benchmarks/results/eXX.txt`` so EXPERIMENTS.md
rows can be pasted from a run.

Benchmarks run each experiment once per round (``pedantic``): the
experiments are deterministic whole-system runs, not microbenchmarks,
so statistical repetition buys nothing but wall-clock.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.registry import ExperimentResult, get_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def run_and_record(
    experiment_id: str,
    benchmark,
    seed: int = 0,
    fast: bool = True,
    rounds: int = 3,
) -> ExperimentResult:
    """Benchmark one experiment, persist its tables, assert its shape."""
    runner = get_experiment(experiment_id)
    result = benchmark.pedantic(
        runner, kwargs={"seed": seed, "fast": fast}, rounds=rounds, iterations=1
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / f"{experiment_id.lower()}.txt"
    out_path.write_text(result.render() + "\n", encoding="utf-8")
    failing = {name for name, ok in result.checks.items() if not ok}
    assert not failing, f"{experiment_id} shape checks failed: {failing}"
    return result
