"""Benchmark for experiment E3: regenerates its result table(s).

See the E3 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e03.txt.
"""

from _harness import run_and_record


def test_e03_agenda_concentration(benchmark):
    run_and_record("E3", benchmark)
