"""Suite wall-clock scaling across worker counts.

Runs the experiment suite at 1, 2, and 4 workers against a shared,
pre-warmed artifact cache and persists one JSON artifact
(``results/suite_parallel.json``) with per-worker-count wall clock and
speedup over the sequential run.  Parallel speedup is bounded by
physical cores, so the machine's ``cpu_count`` is recorded as part of
the result, not incidental metadata: on a single-core box the expected
speedup is ~1x and the artifact says so.

Every run must also produce the *same* report fingerprint — this bench
doubles as an end-to-end determinism check on the real suite.

Full (non-fast) mode by default, matching the acceptance criterion;
set ``REPRO_BENCH_FAST=1`` to iterate on the harness quickly.
"""

import json
import os
import time

from _harness import RESULTS_DIR

from repro.experiments._corpus import (
    clear_corpus_cache,
    configure_corpus_cache,
    shared_corpus,
)
from repro.runtime.runner import SuiteRunner

WORKER_COUNTS = (1, 2, 4)


def test_suite_wall_clock_scaling(tmp_path):
    fast = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")
    cache_dir = str(tmp_path / "artifacts")

    # Prime the shared corpus artifact so every timed run — sequential
    # included — sees the same warm on-disk cache.
    previous = configure_corpus_cache(cache_dir)
    try:
        shared_corpus(seed=0, fast=fast)
    finally:
        configure_corpus_cache(previous)

    runs = []
    fingerprints = set()
    for workers in WORKER_COUNTS:
        clear_corpus_cache()  # every run loads the corpus from disk
        runner = SuiteRunner(workers=workers, cache_dir=cache_dir)
        start = time.perf_counter()
        report = runner.run_all(seed=0, fast=fast)
        wall = time.perf_counter() - start
        assert report.ok, [r.experiment_id for r in report.errors]
        fingerprints.add(report.fingerprint())
        runs.append({"workers": workers, "wall_seconds": wall})
    assert len(fingerprints) == 1, "worker counts disagreed on the report"

    sequential = runs[0]["wall_seconds"]
    payload = {
        "benchmark": "suite_parallel",
        "seed": 0,
        "fast": fast,
        "cpu_count": os.cpu_count(),
        "fingerprint": fingerprints.pop(),
        "runs": [
            {
                **run,
                "speedup_vs_sequential": (
                    sequential / run["wall_seconds"]
                    if run["wall_seconds"] else None
                ),
            }
            for run in runs
        ],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "suite_parallel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
