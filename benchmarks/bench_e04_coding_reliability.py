"""Benchmark for experiment E4: regenerates its result table(s).

See the E4 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e04.txt.
"""

from _harness import run_and_record


def test_e04_coding_reliability(benchmark):
    run_and_record("E4", benchmark)
