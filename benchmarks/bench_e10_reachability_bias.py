"""Benchmark for experiment E10: regenerates its result table(s).

See the E10 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e10.txt.
"""

from _harness import run_and_record


def test_e10_reachability_bias(benchmark):
    run_and_record("E10", benchmark)
