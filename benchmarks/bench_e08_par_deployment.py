"""Benchmark for experiment E8: regenerates its result table(s).

See the E8 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e08.txt.
"""

from _harness import run_and_record


def test_e08_par_deployment(benchmark):
    run_and_record("E8", benchmark)
