"""Result-service latency under concurrency, hot vs cold, plus chaos.

Runs a live :class:`repro.serve.service.ServerThread` on a loopback
port and drives it with the closed-loop load generator at 1, 8, and 64
concurrent clients:

- **cold**: every client asks for the same never-computed
  ``config_hash`` — the requests coalesce onto one supervised compute
  job, so this measures the miss path *and* demonstrates coalescing at
  scale (the compute-job counter moves by ~1, not by N);
- **hot**: the same key again, now cached — pure read-through;
- **chaos**: the fault injector SIGKILLs the compute workers, and
  every client gets the contract response (``503 + Retry-After``)
  instead of a hang or a dead server; after the fault clears, a retry
  succeeds.

Persists one JSON artifact (``results/serve.json``) with p50/p95/p99
per phase and concurrency level, status mixes, and the final
``serve.*`` counter snapshot — and appends the fixed-workload hot-path
p95 to the bench ledger via the same runner ``repro bench run
serve_p95`` uses, keeping the gated series workload-identical.
"""

import json
import os

from _harness import LEDGER_PATH, RESULTS_DIR

from repro.bench.hotpaths import run_hot_path
from repro.bench.ledger import append_entries

from repro.obs.metrics import MetricsRegistry
from repro.runtime.faultinject import FaultInjector
from repro.serve.client import fetch, run_load
from repro.serve.service import ResultService, ServeConfig, ServerThread

HOST = "127.0.0.1"
CLIENT_LEVELS = (1, 8, 64)
HOT_REQUESTS_PER_CLIENT = 10


def _serve_counters(service):
    counters = service.metrics.snapshot()["counters"]
    return {k: v for k, v in sorted(counters.items()) if k.startswith("serve.")}


def test_serve_latency_percentiles_hot_and_cold(tmp_path):
    service = ResultService(
        ServeConfig(
            cache_dir=str(tmp_path / "cache"), deadline=120.0, max_inflight=128
        ),
        metrics=MetricsRegistry(),
    )
    runs = []
    with ServerThread(service) as server:
        port = server.port
        for index, clients in enumerate(CLIENT_LEVELS):
            # a fresh seed per level -> this level's first wave is cold
            path = f"/v1/result/E7?seed={100 + index}"
            jobs_before = _serve_counters(service).get("serve.compute_jobs", 0)
            cold = run_load(
                HOST, port, path,
                clients=clients, requests_per_client=1, timeout=120,
            )
            jobs_after = _serve_counters(service).get("serve.compute_jobs", 0)
            assert cold.statuses.get(200, 0) == clients, cold.statuses
            # coalescing: N concurrent cold requests ran ~1 job, never N
            assert 1 <= jobs_after - jobs_before <= max(1, clients // 2)
            runs.append({
                "phase": "cold", **cold.summary(),
                "compute_jobs": jobs_after - jobs_before,
            })

            hot = run_load(
                HOST, port, path,
                clients=clients,
                requests_per_client=HOT_REQUESTS_PER_CLIENT,
                timeout=120,
            )
            expected = clients * HOT_REQUESTS_PER_CLIENT
            assert hot.statuses.get(200, 0) == expected, hot.statuses
            runs.append({"phase": "hot", **hot.summary()})

    chaos = _chaos_phase(tmp_path)
    payload = {
        "benchmark": "serve",
        "experiment_id": "E7",
        "client_levels": list(CLIENT_LEVELS),
        "cpu_count": os.cpu_count(),
        "runs": runs + [chaos["run"]],
        "chaos": {k: v for k, v in chaos.items() if k != "run"},
        "counters": _serve_counters(service),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "serve.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_serve_p95_ledger_append():
    """Record the serve hot path's tail latency in the bench ledger."""
    entries = run_hot_path("serve_p95")
    assert append_entries(LEDGER_PATH, entries) == len(entries)
    assert entries[0]["metric"] == "hot_p95_seconds"


def _chaos_phase(tmp_path):
    """Kill compute workers mid-request; the contract must hold under load."""
    injector = FaultInjector(seed=7)
    injector.register("experiment:E5", mode="kill")
    service = ResultService(
        ServeConfig(
            cache_dir=str(tmp_path / "chaos-cache"),
            workers=2,
            deadline=120.0,
            retry_after=1.0,
        ),
        metrics=MetricsRegistry(),
        fault_injector=injector,
        runner_kwargs={"max_worker_crashes": 2, "degrade": False},
    )
    with ServerThread(service) as server:
        port = server.port
        report = run_load(
            HOST, port, "/v1/result/E5?seed=0",
            clients=8, requests_per_client=1, timeout=120,
        )
        # every client saw the degraded answer, none crashed the server
        assert report.statuses.get(503, 0) == 8, report.statuses
        assert fetch(HOST, port, "/healthz").status == 200
        injector.clear()
        retry = fetch(HOST, port, "/v1/result/E5?seed=0", timeout=120)
        assert retry.status == 200
    return {
        "run": {"phase": "chaos-503", **report.summary()},
        "retry_after_clear_status": retry.status,
        "retry_after_clear_ms": round(retry.elapsed * 1000, 3),
        "counters": _serve_counters(service),
    }
