"""Benchmark for experiment E9: regenerates its result table(s).

See the E9 module in repro.experiments for the paper claim and the
expected shape; rendered tables land in benchmarks/results/e09.txt.
"""

from _harness import run_and_record


def test_e09_cpr_congestion(benchmark):
    run_and_record("E9", benchmark)
