"""Quickstart: a tour of the human-centered networking toolkit.

Walks one miniature study end to end — the workflow the paper's
Section 5 recommends, in code:

1. set up a research project with a documented partnership,
2. record engagement events and informal conversations,
3. run fieldwork, code the field notes, check inter-rater reliability,
4. write a positionality statement,
5. handle consent and anonymization before quoting anyone,
6. audit the project against the paper's three recommendations.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ConversationRecord,
    EngagementEvent,
    EngagementKind,
    Partner,
    PositionalityStatement,
    ResearchProject,
    ResearchStage,
    audit_project,
    disclosure_score,
)
from repro.core.ethnography import FieldNote, FieldSite, FieldworkPlan
from repro.ethics import ConsentRegistry, Pseudonymizer, scrub_quasi_identifiers
from repro.qualcoding import Codebook, CodingSession, compare_raters


def main() -> None:
    # 1. The project and its partnership (Section 5.1: document how the
    #    relationship formed).
    project = ResearchProject(
        name="valley-backhaul-study",
        description="Why does the valley cooperative's backhaul keep failing?",
    )
    project.add_partner(
        Partner(
            "coop",
            "Valley Connectivity Cooperative",
            kind="community",
            relationship_origin=(
                "introduced at a municipal broadband meeting; six months of "
                "volunteering preceded any research activity"
            ),
        )
    )

    # 2. Engagement: the cooperative names the problem, co-designs the
    #    fix, and evaluates it on their live network.
    project.ledger.record(
        EngagementEvent(
            0, ResearchStage.PROBLEM_FORMATION, "coop", EngagementKind.LED,
            "cooperative identified backhaul reliability as the problem",
        )
    )
    project.ledger.record(
        EngagementEvent(
            2, ResearchStage.DESIGN, "coop", EngagementKind.COLLABORATED,
            "co-designed the monitoring plan", fed_back_into_design=True,
        )
    )
    project.ledger.record(
        EngagementEvent(
            8, ResearchStage.EVALUATION, "coop", EngagementKind.INVOLVED,
            "evaluation ran on the cooperative's production links",
        )
    )
    project.record_conversation(
        ConversationRecord(
            "conv-1", "coop", 1,
            summary="hallway chat with the volunteer who reboots the tower",
            how_it_informed="reframed outages as a parts-logistics problem",
            quotes=("parts take a season to arrive",),
            open_questions=("would pre-positioned spares change anything?",),
        )
    )

    # 3. Fieldwork -> coding -> reliability.
    plan = FieldworkPlan("valley-fieldwork")
    plan.add_site(FieldSite("tower", "the hilltop relay site"))
    plan.schedule_visit("tower", 0, 14)
    notes = (
        "Volunteers hauled a replacement radio up the hill; the cost of "
        "spares came up twice.",
        "The repair took an afternoon once parts arrived; trust in the "
        "local operator is strong.",
        "Another outage traced to a corroded connector; maintenance labour "
        "is donated and finite.",
    )
    for day, text in enumerate(notes):
        plan.record_note(FieldNote(f"note-{day}", "tower", day, text))

    book = Codebook("valley")
    book.add("cost", "Money-related burdens: spares, transit, travel")
    book.add("maintenance", "Repair work and the labour behind it")
    book.add("trust", "Trust in local operation")
    session = CodingSession(book)
    for document in plan.documents():
        session.add_document(document)
    keyword_rules = {
        "cost": ("cost", "spares"),
        "maintenance": ("repair", "maintenance", "replacement"),
        "trust": ("trust",),
    }
    for rater in ("alice", "bikram"):
        for document in plan.documents():
            lowered = document.text.lower()
            for code, keywords in keyword_rules.items():
                if any(keyword in lowered for keyword in keywords):
                    session.code(document.doc_id, code, 0, 12, rater=rater)

    print("== Inter-rater reliability ==")
    for report in compare_raters(session):
        print(
            f"  {report.code:12s} kappa={report.kappa:5.2f} "
            f"({report.interpretation})"
        )

    # 4. Positionality (Section 5.3).
    statement = PositionalityStatement(
        identity="network engineers at a public university",
        location="two hours' drive from the valley",
        beliefs="community-operated infrastructure as a default good",
        community_ties="one author volunteers with the cooperative",
        relevance="our framing of 'reliability' started from uptime, not labour",
    )
    project.positionality.append(statement)
    print("\n== Positionality ==")
    print(f"  disclosure score: {disclosure_score(statement):.2f}")
    print(f"  {statement.render()}")

    # 5. Consent-gated, anonymized quoting (Section 6.2.3).
    registry = ConsentRegistry()
    registry.grant("volunteer-7", {"interview", "publication-quote"}, now=0)
    registry.require("volunteer-7", "publication-quote", now=8)
    pseudonymizer = Pseudonymizer(study_key="valley-2026")
    quote = pseudonymizer.apply(
        "Rosa Quispe said: parts take a season to arrive", ["Rosa Quispe"]
    )
    quote = scrub_quasi_identifiers(quote)
    print("\n== Publishable quote ==")
    print(f"  {quote}")

    # 6. The Section-5 audit.
    audit = audit_project(project)
    print("\n== Recommendations audit ==")
    print(f"  partnerships:  {audit.partnerships.score:.2f}")
    print(f"  conversations: {audit.conversations.score:.2f}")
    print(f"  positionality: {audit.positionality.score:.2f}")
    print(f"  overall:       {audit.overall:.2f}")
    for finding in audit.all_findings():
        print(f"  finding: {finding}")


if __name__ == "__main__":
    main()
