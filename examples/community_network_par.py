"""Community-network operation: participatory vs top-down (Section 4).

Part 1 simulates 24 months of a 60-household mesh under the fully
participatory operating mode (community siting + local maintenance +
feedback iteration) and under top-down operation, then ablates each
ingredient.  Part 2 zooms into congestion management, comparing
common-pool-resource allocation against FIFO, static caps, and max-min.

Run:  python examples/community_network_par.py
"""

from repro.io.tables import Table
from repro.netsim.community import (
    fee_sweep,
    run_congestion_study,
    run_deployment_study,
)


def deployment() -> None:
    print("=" * 72)
    print("Part 1: 24 months of operation, PAR vs top-down (5-seed average)")
    print("=" * 72)
    results = run_deployment_study(n_seeds=5, months=24, ablations=True)
    table = Table(
        ["policy", "coverage", "repair days", "retention", "members",
         "volunteers"],
        title="Deployment outcomes",
    )
    for policy, record in results.items():
        table.add_row(
            [
                policy,
                record["mean_coverage"],
                record["median_repair_days"],
                record["retention"],
                record["final_members"],
                record["final_volunteers"],
            ]
        )
    print(table.render())
    par = results["par"]
    top = results["top_down"]
    print(
        f"\nReading: the participatory operation repairs "
        f"{top['median_repair_days'] / par['median_repair_days']:.1f}x "
        "faster (locals notice outages and live near the towers), retains "
        "more members, and ends with a volunteer base instead of a ticket "
        "queue. No single ingredient alone reproduces the effect — "
        "engagement is what keeps the volunteer pool alive."
    )


def congestion() -> None:
    print()
    print("=" * 72)
    print("Part 2: shared backhaul as a common-pool resource")
    print("=" * 72)
    results = run_congestion_study(n_members=24, n_rounds=300, seed=0)
    table = Table(
        ["policy", "Jain fairness", "satisfaction", "utilization",
         "starved rounds"],
        title="Allocator comparison under overload (20% persistent heavy users)",
    )
    for policy, record in results.items():
        table.add_row(
            [
                policy,
                record["mean_jain"],
                record["mean_satisfaction"],
                record["mean_utilization"],
                record["starved_rounds_share"],
            ]
        )
    print(table.render())
    print(
        "\nReading: FIFO starves someone in most overloaded rounds; static "
        "caps waste headroom; community CPR rules (graduated sanctions + "
        "behaviour change) keep fairness near max-min while actually "
        "reducing offered overload."
    )


def economics() -> None:
    print()
    print("=" * 72)
    print("Part 3: the affordability vise — fee policy and sustainability")
    print("=" * 72)
    table = Table(
        ["policy", "fee", "solvent", "months", "final members"],
        title="36-month cash-flow simulation",
    )
    for income_scaled in (False, True):
        label = "income-scaled" if income_scaled else "flat"
        for record in fee_sweep(income_scaled=income_scaled, seed=1):
            table.add_row(
                [
                    label,
                    record["fee"],
                    record["solvent"],
                    record["months_survived"],
                    record["final_members"],
                ]
            )
    print(table.render())
    print(
        "\nReading: both fee policies show the inverted-U (too cheap "
        "bleeds the reserve, too expensive bleeds the membership), but "
        "inside the window the income-scaled cooperative fee keeps every "
        "household connected — the cross-subsidy removes affordability "
        "churn instead of balancing it."
    )


if __name__ == "__main__":
    deployment()
    congestion()
    economics()
