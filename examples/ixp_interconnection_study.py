"""The two IXP case studies from the paper's Section 3, as simulations.

Part 1 — Mandatory peering and the ASN-split evasion (Rosa [38]):
an incumbent satisfies a "must peer at the IXP" rule by presenting a
shell ASN while its network stays unpeered.  The simulation shows legal
compliance and traffic reality diverging, and the enforcement design
(ASN-level vs organization-level) that opens or closes the loophole.

Part 2 — IXP gravity (Rosa [39]): with big-tech PoPs sparse in the
South region, domestic ISPs interconnect at a foreign mega-exchange and
domestic traffic trombones abroad; sweeping PoP presence shows the
effect reversing.

Run:  python examples/ixp_interconnection_study.py
"""

from repro.io.tables import Table
from repro.netsim.bgp import (
    run_gravity_study,
    run_hijack_study,
    run_mandatory_peering_study,
)
from repro.netsim.bgp.ixp import connect_ixp_members
from repro.netsim.bgp.scenarios import (
    ALT_TRANSIT_ASN,
    INCUMBENT_ASN,
    build_mandatory_peering_scenario,
)


def mandatory_peering() -> None:
    print("=" * 72)
    print("Part 1: mandatory IXP peering and the ASN-split evasion")
    print("=" * 72)
    results = run_mandatory_peering_study(n_small_isps=30, seed=0)
    table = Table(
        ["variant", "local", "tromboned", "via IXP", "ASN-compliant",
         "org-compliant"],
        title="Domestic traffic locality by regulatory variant",
    )
    for variant, record in results.items():
        table.add_row(
            [
                variant,
                record["local_share"],
                record["tromboned_share"],
                record["via_ixp_share"],
                record["compliant_asn_level"],
                record["compliant_org_level"],
            ]
        )
    print(table.render())
    evasion = results["asn_split_evasion"]
    none = results["no_regulation"]
    print(
        "\nReading: the evasion variant is ASN-level compliant, yet its "
        f"local-traffic share ({evasion['local_share']:.2f}) equals the "
        f"unregulated market's ({none['local_share']:.2f}). The mandate "
        "moved paper, not packets — until enforcement looks at the "
        "organization instead of the ASN."
    )


def ixp_gravity() -> None:
    print()
    print("=" * 72)
    print("Part 2: content-PoP presence vs foreign mega-IXP gravity")
    print("=" * 72)
    records = run_gravity_study(seed=0)
    table = Table(
        ["PoP presence", "content served locally", "tromboned",
         "mega-IXP gravity"],
        title="Sweep of big-tech PoP presence in the South region",
    )
    for record in records:
        table.add_row(
            [
                record["content_pop_presence"],
                record["content_served_domestically"],
                record["eyeball_tromboned_share"],
                record["mega_gravity_ratio"],
            ]
        )
    print(table.render())
    print(
        "\nReading: with no local PoPs the foreign mega-exchange carries "
        f"{records[0]['mega_gravity_ratio']:.0%} of IXP-crossing volume — "
        "the 'giant Internet node' of the ethnography. Every added PoP "
        "pulls traffic home."
    )


def hijack_economics() -> None:
    print()
    print("=" * 72)
    print("Part 3: whose lie travels — hijacks ride the same economics")
    print("=" * 72)
    scenario = build_mandatory_peering_scenario(n_small_isps=24, seed=0)
    connect_ixp_members(scenario.graph, scenario.ixp)
    small_isps = [
        a.asn for a in scenario.graph if a.kind == "stub"
    ]
    victim = small_isps[0]
    records = run_hijack_study(
        scenario.graph, victim,
        attackers=[INCUMBENT_ASN, ALT_TRANSIT_ASN, small_isps[-1]],
        validation_levels=(0.0, 0.5, 1.0),
    )
    table = Table(
        ["attacker", "customer cone", "validation", "pollution"],
        title=f"Hijack of AS{victim}'s prefix",
    )
    for record in records:
        table.add_row(
            [
                record["attacker"],
                record["attacker_cone"],
                record["validation_level"],
                record["pollution_share"],
            ]
        )
    print(table.render())
    no_validation = [r for r in records if r["validation_level"] == 0.0]
    worst = max(no_validation, key=lambda r: r["pollution_share"])
    full = [r for r in records if r["validation_level"] == 1.0]
    print(
        "\nReading: the protocol treats every origination equally; the "
        "*economics* of valley-free routing decide who believes the lie "
        f"— here AS{worst['attacker']}'s position lets it poison "
        f"{worst['pollution_share']:.0%} of the market, and origin "
        "validation deployed at the biggest networks first collapses "
        f"every attacker to {max(r['pollution_share'] for r in full):.0%}. "
        "BGP's research richness is social, exactly as Section 6.2.2 "
        "argues."
    )


if __name__ == "__main__":
    mandatory_peering()
    ixp_gravity()
    hijack_economics()
