"""Reachability bias: whose problems enter the pipeline? (Section 1)

Builds a stakeholder population whose strata differ in how reachable
they are (hyperscaler engineers answer email; rural users of community
networks mostly do not), runs three recruitment strategies, fields a
survey instrument to each sample, and reports which problem classes each
strategy can even see.

Run:  python examples/reachability_survey.py
"""

from repro.io.tables import Table
from repro.surveys import (
    Instrument,
    PROBLEM_CATALOG,
    Question,
    chain_referral_sample,
    convenience_sample,
    coverage_report,
    cronbach_alpha,
    default_population,
    quota_sample,
    simulate_responses,
)


def main() -> None:
    population = default_population(size=1500, seed=0)
    print(
        f"Population: {len(population)} stakeholders across "
        f"{len(population.strata())} reachability strata, "
        f"{len(population.problems_present())} distinct problems present.\n"
    )

    samples = {
        "convenience": convenience_sample(population, 150, seed=1),
        "quota": quota_sample(population, per_stratum=18, seed=1),
        "chain-referral": chain_referral_sample(population, 150, seed=1),
    }

    table = Table(
        ["scheme", "recruits", "attempts", "problem coverage",
         "low-reach coverage"],
        title="What each recruitment strategy can see",
    )
    for scheme, report in samples.items():
        coverage = coverage_report(population, report)
        table.add_row(
            [
                scheme,
                report.n_sampled,
                report.attempts,
                coverage["problem_coverage"],
                coverage["low_reach_problem_coverage"],
            ]
        )
    print(table.render())

    convenience_coverage = coverage_report(population, samples["convenience"])
    missed = convenience_coverage["missed_problems"]
    if missed:
        print("\nProblems invisible to the convenience sample:")
        for problem_id in missed:
            print(f"  - {PROBLEM_CATALOG[problem_id]['description']}")

    # Field an instrument to the chain-referral sample and check the
    # problem scale's internal consistency.
    instrument = Instrument("problem-severity")
    scale_items = []
    for problem_id in ("backhaul-cost", "power-instability", "affordability"):
        qid = f"problem:{problem_id}"
        instrument.add(Question(qid, f"'{problem_id}' affects my network"))
        scale_items.append(qid)
    recruits = [
        population.get(sid) for sid in samples["chain-referral"].sampled_ids
    ]
    responses = simulate_responses(recruits, instrument, seed=2)
    alpha = cronbach_alpha(responses, scale_items)
    if alpha >= 0.7:
        verdict = "the items cohere into one underlying burden"
    elif alpha >= 0.4:
        verdict = (
            "the items partially cohere — these burdens overlap across "
            "strata but are not a single construct"
        )
    else:
        verdict = "the items measure distinct burdens"
    print(
        f"\nFielded {len(responses)} responses; Cronbach's alpha of the "
        f"precarity scale: {alpha:.2f} ({verdict})."
    )
    print(
        "\nReading: recruitment through existing reachable channels "
        "reproduces the paper's Section-1 claim — whole problem classes "
        "are 'rendered invisible, because the people experiencing them "
        "are not in the room'. Partnership-based chain referral gets "
        "them in the room at a comparable contact budget."
    )


if __name__ == "__main__":
    main()
