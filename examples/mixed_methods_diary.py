"""Mixed methods: diaries + technology probes + focus groups (§6.1).

The paper's Section 6.1 points past its three headline methods to
"diaries, case studies, and focus groups", blended "with quantitative
approaches, such as in the case of analyzing user diaries and
technology probes".  This example runs that blend:

1. a 28-day connectivity diary study with a passive technology probe,
2. triangulation: what usage the diaries miss (recall bias) and how
   participation decays (diary fatigue),
3. a focus-group session with balance diagnostics, and
4. a severity scale coded by two raters with *ordinal* agreement
   (weighted kappa — a near-miss on a severity scale is not the same
   mistake as a five-point miss).

Run:  python examples/mixed_methods_diary.py
"""

from repro.core.diary import simulate_diary_study, triangulate
from repro.core.focusgroup import FocusGroup, Turn
from repro.io.tables import Table
from repro.qualcoding.ordinal import disagreement_pairs, weighted_kappa


def diary_part() -> None:
    print("=" * 72)
    print("Part 1: diary study + technology probe (28 days, 16 households)")
    print("=" * 72)
    study, probe = simulate_diary_study(
        n_participants=16, duration_days=28,
        compliance_decay_per_day=0.015, recall_error=0.25, seed=7,
    )
    result = triangulate(study, probe)
    table = Table(["metric", "value"], title="Diary vs probe")
    table.add_row(["diary entries", len(study.entries())])
    table.add_row(["fatigue slope (per day)", study.fatigue_slope()])
    table.add_row(["first-half entry length (words)", study.mean_entry_length("first")])
    table.add_row(["second-half entry length (words)", study.mean_entry_length("second")])
    table.add_row(["mean recall of true usage", result["mean_recall"]])
    table.add_row(["underreporting rate", result["underreporting_rate"]])
    print(table.render())
    print(
        "\nReading: participation decays (classic diary fatigue) and about "
        f"{result['underreporting_rate']:.0%} of probe-observed usage days "
        "never reach a diary — the quantitative instrument recovers what "
        "self-report forgets, and the diary explains what the probe can't."
    )


def focus_group_part() -> None:
    print()
    print("=" * 72)
    print("Part 2: focus group balance diagnostics")
    print("=" * 72)
    group = FocusGroup("outage-debrief", ["rosa", "emeka", "lin", "dana"])
    group.add_turn(Turn("mod", "Walk me through the last outage.",
                        is_facilitator=True))
    group.add_turn(Turn("rosa", "The storm took the backhaul at dusk; I "
                                "called Emeka, and we split the hill climb "
                                "between our households the next morning."))
    group.add_turn(Turn("emeka", "The radio survived; the power injector "
                                 "didn't. We had no spare."))
    group.add_turn(Turn("mod", "Dana, what did it look like from the "
                               "school?", is_facilitator=True))
    group.add_turn(Turn("dana", "Two days offline."))
    group.add_turn(Turn("rosa", "We keep saying we need a parts box in the "
                                "village and it keeps not happening because "
                                "nobody owns the budget line."))
    report = group.balance_report()
    table = Table(["participant", "speaking share"], title="Speaking shares")
    for pid, share in sorted(report["speaking_shares"].items()):
        table.add_row([pid, share])
    print(table.render())
    print(f"dominance Gini:     {report['dominance_gini']:.2f}")
    print(f"facilitator share:  {report['facilitator_share']:.2f}")
    print(f"silent voices:      {report['silent_participants'] or 'none'}")
    print(
        "\nReading: Rosa produces most of the words; Lin never speaks. "
        "A finding attributed to 'the community' from this session is "
        "really a finding from Rosa — the diagnostic tells the "
        "facilitator to change that before the next session."
    )


def ordinal_coding_part() -> None:
    print()
    print("=" * 72)
    print("Part 3: ordinal severity coding (weighted kappa)")
    print("=" * 72)
    scale = [1, 2, 3, 4, 5]
    incidents = [f"incident-{i:02d}" for i in range(12)]
    alice = [5, 4, 2, 3, 1, 5, 4, 2, 2, 3, 4, 1]
    bikram = [4, 4, 2, 3, 1, 5, 5, 2, 3, 3, 4, 2]   # near misses
    casual = [1, 5, 5, 1, 3, 2, 1, 5, 5, 1, 2, 5]   # unrelated ratings
    table = Table(["pairing", "linear kappa", "quadratic kappa"],
                  title="Severity-coding agreement")
    for name, other in (("alice vs bikram", bikram), ("alice vs casual", casual)):
        table.add_row(
            [
                name,
                weighted_kappa(alice, other, scale, weights="linear"),
                weighted_kappa(alice, other, scale, weights="quadratic"),
            ]
        )
    print(table.render())
    pairs = disagreement_pairs(alice, bikram, incidents)
    print("\nReconciliation agenda (alice vs bikram):")
    for unit_id, a, b in pairs:
        print(f"  {unit_id}: alice={a} bikram={b}")
    print(
        "\nReading: alice and bikram disagree only by adjacent scale "
        "points — weighted kappa credits that; plain nominal agreement "
        "would punish a 4-vs-5 exactly like a 1-vs-5."
    )


if __name__ == "__main__":
    diary_part()
    focus_group_part()
    ordinal_coding_part()
