"""The Section-2 historical exhibit: congestion collapse, run live.

The paper grounds its Action-Research argument in networking's own
history: congestion control "deployed first into the Internet",
iterated with operators — and "we know what would have happened without
these use-focused 'action' methods".  This example runs the
counterfactual: open-loop fixed-window senders (static timeout, no
adaptation — the pre-Tahoe design) against Tahoe and Reno on a shared
drop-tail bottleneck, sweeping offered load.

Run:  python examples/congestion_collapse_history.py
"""

from repro.io.tables import Table
from repro.netsim.bgp.resilience import criticality_ranking
from repro.netsim.bgp.scenarios import (
    INCUMBENT_ASN,
    build_mandatory_peering_scenario,
)
from repro.netsim.bgp.ixp import connect_ixp_members
from repro.netsim.transport import run_collapse_study


def collapse() -> None:
    print("=" * 72)
    print("Part 1: goodput vs offered load — the 1986-88 counterfactual")
    print("=" * 72)
    results = run_collapse_study(ticks=600)
    table = Table(
        ["protocol", "load", "goodput", "duplicates", "loss", "queue delay"],
        title="8 flows on a drop-tail bottleneck",
    )
    for record in results:
        table.add_row(
            [
                record.protocol,
                record.offered_load,
                record.goodput,
                record.duplicate_share,
                record.loss_rate,
                record.mean_queue_delay,
            ]
        )
    print(table.render())
    fixed_overload = [
        r for r in results if r.protocol == "fixed" and r.offered_load > 1.0
    ]
    print(
        "\nReading: the moment load exceeds capacity, the open-loop "
        "sender's static timeout fires while packets still sit in the "
        f"queue; ~{fixed_overload[0].duplicate_share:.0%} of everything "
        "delivered is a duplicate and goodput halves. Tahoe's "
        "deployment-bred fixes (adaptive RTO + AIMD) hold the plateau; "
        "Reno's fast recovery closes the remaining gap. The fix was not "
        "derived in the abstract — it was iterated in production, which "
        "is the paper's point."
    )


def criticality() -> None:
    print()
    print("=" * 72)
    print("Part 2: what one actor's failure costs (resilience ranking)")
    print("=" * 72)
    scenario = build_mandatory_peering_scenario(n_small_isps=24, seed=0)
    connect_ixp_members(scenario.graph, scenario.ixp)
    ranking = criticality_ranking(
        scenario.graph, scenario.demands, scenario.country,
        candidate_asns=[INCUMBENT_ASN, 2],
        candidate_ixps=[scenario.ixp],
    )
    table = Table(
        ["element", "delivered drop", "local-share drop"],
        title="Single-failure damage to domestic traffic",
    )
    for record in ranking:
        table.add_row(
            [record["element"], record["delivered_drop"], record["local_drop"]]
        )
    print(table.render())
    print(
        "\nReading: the incumbent's failure severs most of the country's "
        "delivered traffic — the infrastructure version of §6.2.1's "
        "'individuals with enormous influence on the network'. Small-N "
        "engagement with exactly these actors covers most of the system."
    )


if __name__ == "__main__":
    collapse()
    criticality()
