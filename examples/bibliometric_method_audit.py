"""Bibliometric audit: where do human methods live? (Sections 1, 4, 6.4)

Generates the calibrated synthetic venue corpus (the offline stand-in
for a DBLP/Semantic-Scholar scrape — see DESIGN.md), then runs the three
bibliometric analyses:

1. human-method adoption share per venue and venue kind (E1),
2. positionality-statement prevalence plus extractor accuracy (E2),
3. agenda concentration: whose problems get studied (E3).

Run:  python examples/bibliometric_method_audit.py
"""

from repro.bibliometrics import (
    SyntheticCorpusConfig,
    generate_corpus,
    gini,
    room_report,
    top_k_share,
    venue_adoption_table,
)
from repro.core.positionality import has_positionality_statement
from repro.io.tables import Table
from repro.textmine import collocations


def main() -> None:
    print("Generating synthetic corpus (12 venues, 2010-2025)...")
    corpus, truth = generate_corpus(
        SyntheticCorpusConfig(start_year=2010, end_year=2025, seed=0)
    )
    print(f"  {len(corpus)} papers, {len(corpus.authors())} authors\n")

    # 1. Method adoption.
    table = Table(
        ["venue", "kind", "papers", "human-method share"],
        title="Human-method adoption by venue (detector output)",
    )
    for record in venue_adoption_table(corpus):
        table.add_row(
            [
                record["venue_id"], record["kind"], record["n_papers"],
                record["human_share"],
            ]
        )
    print(table.render())

    # 2. Positionality prevalence.
    per_kind: dict[str, list[bool]] = {}
    for paper in corpus:
        kind = corpus.venue(paper.venue_id).kind
        per_kind.setdefault(kind, []).append(
            has_positionality_statement(paper.full_text)
        )
    prevalence = Table(
        ["venue kind", "positionality prevalence"],
        title="Positionality statements by venue kind",
    )
    for kind in sorted(per_kind):
        flags = per_kind[kind]
        prevalence.add_row([kind, sum(flags) / len(flags)])
    print()
    print(prevalence.render())

    # 3. Agenda concentration: citations and topics.
    citation_counts = [
        corpus.citation_counts().get(p.paper_id, 0) for p in corpus
    ]
    print()
    print("Agenda / attention concentration:")
    print(f"  citation Gini:            {gini(citation_counts):.3f}")
    print(f"  top-1% papers' citations: {top_k_share(citation_counts, len(citation_counts) // 100):.1%}")
    networking_topics = {}
    for venue in corpus.venues():
        if venue.kind != "networking":
            continue
        for topic, count in corpus.topic_counts(venue_id=venue.venue_id).items():
            networking_topics[topic] = networking_topics.get(topic, 0) + count
    total = sum(networking_topics.values())
    hyper = sum(
        networking_topics.get(t, 0) for t in ("datacenter", "transport", "routing")
    )
    community = sum(
        networking_topics.get(t, 0)
        for t in ("community-networks", "accessibility", "policy")
    )
    print(f"  networking-venue hyperscaler-topic share: {hyper / total:.1%}")
    print(f"  networking-venue community-topic share:   {community / total:.1%}")

    # 4. Who is in the room, and what do the abstracts talk about.
    print("\nWho is in the room (flagship venues):")
    for venue_id in ("sigcomm-like", "chi-like"):
        room = room_report(corpus, venue_id)
        print(
            f"  {venue_id:14s} hyperscaler slots {room['hyperscaler_slot_share']:.1%}, "
            f"global-south slots {room['global_south_slot_share']:.1%}, "
            f"gatekeeping {room['gatekeeping_index']:.2f}"
        )
    networking_abstracts = [
        p.abstract
        for p in corpus.papers(venue_id="sigcomm-like")
    ]
    top = collocations(networking_abstracts, min_count=20, top_k=5)
    print("\nTop networking-abstract collocations (discounted PMI):")
    for collocation in top:
        print(f"  {collocation.text:30s} n={collocation.count}")
    print(
        "\nReading: the synthetic corpus is calibrated to the paper's "
        "qualitative claims — human methods a thin minority at networking "
        "venues, positionality near-absent, and the agenda mirroring "
        "dominant players. Every analysis above would run unchanged on a "
        "scraped corpus."
    )


if __name__ == "__main__":
    main()
